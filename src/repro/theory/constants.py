"""Approximation constants of the paper (Table 2).

+----------------+------------------------+------------------------------+
| (#CPUs, #GPUs) | approximation ratio    | worst-case example           |
+================+========================+==============================+
| (1, 1)         | phi = (1+sqrt 5)/2     | phi                          |
| (m, 1)         | 1 + phi = (3+sqrt 5)/2 | 1 + phi                      |
| (m, n)         | 2 + sqrt 2 ~ 3.41      | 2 + 2/sqrt 3 ~ 3.15          |
+----------------+------------------------+------------------------------+

The algorithm is symmetric in the two resource classes (swapping the
classes inverts every acceleration factor), so the ``(m, 1)`` ratio also
applies to ``(1, n)`` platforms.
"""

from __future__ import annotations

import math

from repro.core.platform import Platform

__all__ = [
    "PHI",
    "RATIO_1CPU_1GPU",
    "RATIO_MCPU_1GPU",
    "RATIO_GENERAL",
    "RATIO_GENERAL_WORST_EXAMPLE",
    "approximation_ratio",
]

#: The golden ratio ``phi = (1 + sqrt 5) / 2``; satisfies ``phi^2 = phi + 1``.
PHI = (1.0 + math.sqrt(5.0)) / 2.0

#: Theorem 7 — tight (Theorem 8).
RATIO_1CPU_1GPU = PHI

#: Theorem 9 — tight asymptotically in ``m`` (Theorem 11).
RATIO_MCPU_1GPU = 1.0 + PHI

#: Theorem 12 (upper bound; not known to be tight).
RATIO_GENERAL = 2.0 + math.sqrt(2.0)

#: Theorem 14 — best known lower bound for the general case.
RATIO_GENERAL_WORST_EXAMPLE = 2.0 + 2.0 / math.sqrt(3.0)


def approximation_ratio(platform: Platform) -> float:
    """The proved HeteroPrio approximation ratio for a platform shape.

    Platforms with a single resource class fall back to Graham's
    ``2 - 1/k`` list-scheduling bound on ``k`` identical machines (with
    spoliation never triggering, HeteroPrio is a plain list schedule
    there).
    """
    m, n = platform.num_cpus, platform.num_gpus
    if m == 0 or n == 0:
        k = max(m, n)
        return 2.0 - 1.0 / k
    if m == 1 and n == 1:
        return RATIO_1CPU_1GPU
    if min(m, n) == 1:
        return RATIO_MCPU_1GPU
    return RATIO_GENERAL
