"""Machine-checkable statements of the paper's lemmas and theorems.

These helpers turn the paper's results into executable predicates so the
test suite (and the Table 2 bench) can exercise them on arbitrary
instances:

* Lemma 3 corollary (ii): ``T_FirstIdle <= AreaBound(I) <= C_max_opt``;
* Lemmas 4/5 structure: no task is spoliated twice, and a class that
  receives spoliated work never loses work to spoliation;
* Theorems 7/9/12: ``C_max_HP <= ratio(platform) * C_max_opt``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bounds.area import area_bound
from repro.core.heteroprio import HeteroPrioResult, heteroprio_schedule
from repro.core.platform import Platform, ResourceKind
from repro.core.task import Instance
from repro.schedulers.exact import MAX_EXACT_TASKS, optimal_makespan
from repro.theory.constants import approximation_ratio

__all__ = [
    "BoundReport",
    "check_first_idle_bound",
    "check_spoliation_structure",
    "check_approximation_bound",
    "remaining_instance",
    "lemma3_gap",
    "check_lemma3_feasibility",
    "check_lemma3_corollaries",
]

#: Relative tolerance absorbing floating-point noise in the comparisons.
RTOL = 1e-9


@dataclass(frozen=True)
class BoundReport:
    """Outcome of one approximation-bound check."""

    heteroprio_makespan: float
    optimal_makespan: float
    ratio: float
    bound: float
    holds: bool

    def __str__(self) -> str:
        status = "OK" if self.holds else "VIOLATED"
        return (
            f"HP={self.heteroprio_makespan:.6g} OPT={self.optimal_makespan:.6g} "
            f"ratio={self.ratio:.4f} <= bound={self.bound:.4f} [{status}]"
        )


def check_first_idle_bound(
    instance: Instance,
    platform: Platform,
    *,
    result: HeteroPrioResult | None = None,
) -> bool:
    """Lemma 3 corollary: the first idle time never exceeds the area bound."""
    if result is None:
        result = heteroprio_schedule(instance, platform)
    bound = area_bound(instance, platform).value
    return result.t_first_idle <= bound * (1.0 + RTOL) + 1e-12


def check_spoliation_structure(result: HeteroPrioResult) -> bool:
    """Lemmas 4/5, as emergent properties of a HeteroPrio execution.

    Checks that (a) no task is spoliated more than once, and (b) no
    resource class both *receives* spoliated tasks and has tasks
    spoliated *away* from it (spoliation flows one way).
    """
    seen: set[int] = set()
    receiving: set[ResourceKind] = set()
    losing: set[ResourceKind] = set()
    for event in result.spoliations:
        if event.task.uid in seen:
            return False
        seen.add(event.task.uid)
        receiving.add(event.new_worker.kind)
        losing.add(event.victim_worker.kind)
    return not (receiving & losing)


def remaining_instance(result: HeteroPrioResult, instance: Instance, t: float) -> Instance:
    """The sub-instance ``I'(t)`` of Lemma 3: work not yet processed at *t*.

    Built from the no-spoliation schedule :math:`S_{HP}^{NS}`: a finished
    task contributes nothing, an unstarted task contributes itself, and a
    task running at *t* contributes the fraction of it not yet executed
    (tasks are divisible in the area-bound relaxation, so the fraction
    scales both ``p`` and ``q``).
    """
    from repro.core.task import Task

    remaining: list[Task] = []
    for task in instance:
        placement = result.ns_schedule.placement_of(task)
        if placement.end <= t:
            continue
        if placement.start >= t:
            fraction = 1.0
        else:
            fraction = (placement.end - t) / placement.duration
        remaining.append(
            Task(
                cpu_time=task.cpu_time * fraction,
                gpu_time=task.gpu_time * fraction,
                name=f"{task.name}'",
            )
        )
    return Instance(remaining)


def lemma3_gap(
    instance: Instance,
    platform: Platform,
    *,
    n_samples: int = 5,
    result: HeteroPrioResult | None = None,
) -> float:
    """Largest signed deviation from Lemma 3's equality, relative to
    ``AreaBound(I)``.

    Lemma 3 states that for every ``t <= T_FirstIdle`` in
    :math:`S_{HP}^{NS}`, ``t + AreaBound(I'(t)) = AreaBound(I)``.
    The *feasibility* direction
    ``t + AreaBound(I'(t)) >= AreaBound(I)`` always holds (the combined
    prefix + relaxed remainder is a feasible point of the area LP), so
    the returned gap is non-negative up to float noise.

    **Reproduction finding.**  The *equality* direction admits
    counterexamples: when one class's in-flight remainders are much
    smaller than the other's, the remainder's optimal threshold can fall
    outside the ``[k1, k2]`` window asserted in the paper's proof, and
    the gap is strictly positive (we observe up to ~30% relative on
    heavy-tailed instances — see ``tests/test_theory.py``).  The
    corollaries the approximation theorems rely on —
    ``T_FirstIdle <= AreaBound(I)`` and
    ``t + AreaBound(I'(t)) <= C_max_opt(I)`` — hold on every instance we
    have tested (see :func:`check_lemma3_corollaries`).
    """
    if result is None:
        result = heteroprio_schedule(instance, platform)
    total = area_bound(instance, platform).value
    if total == 0.0:
        return 0.0
    worst = 0.0
    for i in range(n_samples):
        t = result.t_first_idle * i / max(n_samples - 1, 1)
        rest = area_bound(remaining_instance(result, instance, t), platform).value
        worst = max(worst, (t + rest - total) / total)
    return worst


def check_lemma3_feasibility(
    instance: Instance,
    platform: Platform,
    *,
    n_samples: int = 5,
) -> bool:
    """The always-true direction of Lemma 3:
    ``t + AreaBound(I'(t)) >= AreaBound(I)`` for ``t <= T_FirstIdle``."""
    result = heteroprio_schedule(instance, platform)
    total = area_bound(instance, platform).value
    for i in range(n_samples):
        t = result.t_first_idle * i / max(n_samples - 1, 1)
        rest = area_bound(remaining_instance(result, instance, t), platform).value
        if t + rest < total - RTOL * max(total, 1.0) - 1e-12:
            return False
    return True


def check_lemma3_corollaries(
    instance: Instance,
    platform: Platform,
    *,
    optimal: float | None = None,
    n_samples: int = 5,
) -> bool:
    """The consequences of Lemma 3 that the theorems actually use:

    (ii) ``T_FirstIdle <= AreaBound(I)``, and
    (i)  ``t + AreaBound(I'(t)) <= C_max_opt(I)`` for ``t <= T_FirstIdle``
    (checked against the exact optimum when *optimal* is omitted).
    """
    result = heteroprio_schedule(instance, platform)
    bound = area_bound(instance, platform).value
    if result.t_first_idle > bound * (1.0 + RTOL) + 1e-12:
        return False
    if optimal is None:
        optimal = optimal_makespan(instance, platform, upper_bound=result.makespan)
    for i in range(n_samples):
        t = result.t_first_idle * i / max(n_samples - 1, 1)
        rest = area_bound(remaining_instance(result, instance, t), platform).value
        if t + rest > optimal * (1.0 + RTOL) + 1e-12:
            return False
    return True


def check_approximation_bound(
    instance: Instance,
    platform: Platform,
    *,
    optimal: float | None = None,
) -> BoundReport:
    """Theorems 7/9/12: HeteroPrio within the proved factor of optimal.

    When *optimal* is not supplied it is computed exactly (only possible
    for small instances, see :data:`repro.schedulers.exact.MAX_EXACT_TASKS`).
    """
    result = heteroprio_schedule(instance, platform, compute_ns=False)
    if optimal is None:
        if len(instance) > MAX_EXACT_TASKS:
            raise ValueError(
                "instance too large for the exact solver; pass optimal= explicitly"
            )
        optimal = optimal_makespan(instance, platform, upper_bound=result.makespan)
    bound = approximation_ratio(platform)
    ratio = result.makespan / optimal if optimal > 0 else 1.0
    return BoundReport(
        heteroprio_makespan=result.makespan,
        optimal_makespan=optimal,
        ratio=ratio,
        bound=bound,
        holds=ratio <= bound * (1.0 + RTOL),
    )
