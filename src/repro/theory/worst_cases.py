"""Tight worst-case instances of Theorems 8, 11 and 14, and Figure 4.

Each generator returns an instance whose task priorities are set so that
the deterministic tie-breaking of this implementation (see
:mod:`repro.core.heteroprio`) realises exactly the adversarial execution
described in the paper's proof.  The paper's theorems only claim that
*some* valid HeteroPrio execution reaches the ratio; priorities are the
knob that selects it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.platform import Platform
from repro.core.task import Instance, Task
from repro.theory.constants import PHI

__all__ = [
    "WorstCaseInstance",
    "theorem8_instance",
    "theorem11_instance",
    "theorem14_instance",
    "figure4_t2_tasks",
    "figure4_optimal_assignment",
    "figure4_worst_order",
    "theorem14_r",
    "list_schedule_homogeneous",
]


#: Tiny relative perturbation making the *intended* acceleration-factor
#: orderings strict.  The paper's constructions rely on exact ties broken
#: adversarially; in floating point an "equal" ratio computed two ways can
#: land on either side by one ulp, silently flipping the queue order.  A
#: deliberate 1e-9 margin (far above ulp noise, far below any duration)
#: pins the order while moving every certified value by at most ~1e-8.
RHO_MARGIN = 1e-9


@dataclass(frozen=True)
class WorstCaseInstance:
    """A worst-case construction with its certified makespan values.

    ``optimal_upper`` is an upper bound on the optimal makespan obtained
    from the paper's explicit packing (exact for Theorem 8; within a
    vanishing slack for Theorems 11 and 14).  ``heteroprio_expected`` is
    the makespan the adversarial HeteroPrio execution reaches.
    """

    instance: Instance
    platform: Platform
    optimal_upper: float
    heteroprio_expected: float

    @property
    def ratio(self) -> float:
        """Certified lower bound on the approximation ratio of HeteroPrio."""
        return self.heteroprio_expected / self.optimal_upper


def theorem8_instance() -> WorstCaseInstance:
    """Theorem 8: two tasks on (1 CPU, 1 GPU) forcing ratio ``phi``.

    ``X``: ``p = phi, q = 1``; ``Y``: ``p = 1, q = 1/phi`` — both have
    acceleration factor ``phi``.  The optimum (X on GPU, Y on CPU) is 1;
    HeteroPrio lets the CPU grab ``X`` and the GPU cannot improve it by
    spoliation (``1/phi + 1 = phi`` is not strictly better), ending at
    ``phi``.
    """
    x = Task(cpu_time=PHI, gpu_time=1.0, name="X", priority=0.0)
    # Y's CPU time carries a +RHO_MARGIN nudge so rho_Y > rho_X strictly
    # (the GPU must pick Y first; an exact tie is float-fragile).
    y = Task(cpu_time=1.0 + RHO_MARGIN, gpu_time=1.0 / PHI, name="Y", priority=1.0)
    return WorstCaseInstance(
        instance=Instance([x, y]),
        platform=Platform(num_cpus=1, num_gpus=1),
        optimal_upper=1.0 + RHO_MARGIN,
        heteroprio_expected=PHI,
    )


def theorem11_instance(m: int, granularity: int = 8) -> WorstCaseInstance:
    """Theorem 11: (m CPUs, 1 GPU) instance with ratio ``-> 1 + phi``.

    Parameters
    ----------
    m:
        Number of CPUs (``m >= 2``; the ratio ``x + phi`` approaches
        ``1 + phi`` as ``m`` grows).
    granularity:
        Number ``K`` of filler tasks per CPU; the filler size is
        ``eps = x / K``, so larger values tighten the optimal packing
        (optimal makespan is at most ``1 + eps * phi``).
    """
    if m < 2:
        raise ValueError("Theorem 11 needs m >= 2 CPUs")
    if granularity < 1:
        raise ValueError("granularity must be >= 1")
    x = (m - 1) / (m + PHI)
    eps = x / granularity

    tasks: list[Task] = []
    # Strict acceleration ordering rho_T4 > rho_T1 > rho_T2 (see
    # RHO_MARGIN): the GPU must drain T4 first, then take T1, leaving T2
    # to a CPU.
    tasks.append(
        Task(cpu_time=1.0 + RHO_MARGIN, gpu_time=1.0 / PHI, name="T1", priority=2.0)
    )
    tasks.append(Task(cpu_time=PHI, gpu_time=1.0, name="T2", priority=1.0))
    for i in range(m * granularity):
        tasks.append(Task(cpu_time=eps, gpu_time=eps, name=f"T3_{i}", priority=0.0))
    for i in range(granularity):
        tasks.append(
            Task(
                cpu_time=eps * PHI * (1.0 + 2.0 * RHO_MARGIN),
                gpu_time=eps,
                name=f"T4_{i}",
                priority=3.0,
            )
        )

    return WorstCaseInstance(
        instance=Instance(tasks),
        platform=Platform(num_cpus=m, num_gpus=1),
        optimal_upper=1.0 + eps * PHI * (1.0 + 2.0 * RHO_MARGIN) + RHO_MARGIN,
        heteroprio_expected=x + PHI,
    )


def theorem14_r(n: int) -> float:
    """The root ``r > 3`` of ``n/r + 2n - 1 = n r / 3`` (Theorem 14).

    Multiplying by ``r`` gives ``(n/3) r^2 - (2n - 1) r - n = 0``; ``r``
    tends to ``3 + 2 sqrt(3)`` as ``n`` grows.
    """
    a = n / 3.0
    b = -(2.0 * n - 1.0)
    c = -float(n)
    return (-b + math.sqrt(b * b - 4.0 * a * c)) / (2.0 * a)


def figure4_t2_tasks(k: int) -> list[float]:
    """GPU durations of the Figure 4 task set ``T2`` for ``n = 6k`` GPUs.

    One task of length ``6k`` plus, for each ``0 <= i <= 2k - 1``, six
    tasks of length ``2k + i``.  Total work ``(6k)^2``, so the optimal
    makespan on ``6k`` machines is ``6k`` (a perfect packing exists) while
    the worst list schedule reaches ``12k - 1 = 2n - 1``.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    durations = [6.0 * k]
    for i in range(2 * k):
        durations.extend([2.0 * k + i] * 6)
    return durations


def figure4_optimal_assignment(k: int) -> list[list[float]]:
    """The paper's perfect packing of ``T2`` on ``n = 6k`` machines.

    Returns one list of durations per machine, each summing to at most
    ``6k`` (and exactly ``6k`` in total work), proving
    ``C_opt(T2) = 6k``:

    * for ``1 <= i < k``, six machines pair a ``2k + i`` task with a
      ``4k - i`` task (sum ``6k``);
    * three machines pair two ``3k`` tasks;
    * two machines stack three ``2k`` tasks;
    * one machine runs the single ``6k`` task.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    machines: list[list[float]] = []
    for i in range(1, k):
        for _ in range(6):
            machines.append([2.0 * k + i, 4.0 * k - i])
    for _ in range(3):
        machines.append([3.0 * k, 3.0 * k])
    for _ in range(2):
        machines.append([2.0 * k, 2.0 * k, 2.0 * k])
    machines.append([6.0 * k])
    assert len(machines) == 6 * k
    return machines


def figure4_worst_order(k: int) -> list[float]:
    """Durations of ``T2`` in the adversarial list order of Figure 4(b).

    First the six tasks of each length ``2k + i`` for ``i = 0..k-1``
    (filling all ``6k`` machines), then lengths ``4k - 1`` down to ``3k``
    (each pairing with the machine that frees up at the right time), then
    the task of length ``6k`` last.
    """
    order: list[float] = []
    for i in range(k):
        order.extend([2.0 * k + i] * 6)
    for i in range(k):
        order.extend([4.0 * k - i - 1] * 6)
    order.append(6.0 * k)
    return order


def list_schedule_homogeneous(durations: list[float], n_machines: int) -> float:
    """Makespan of the greedy list schedule of *durations* (in order)."""
    import heapq

    if n_machines < 1:
        raise ValueError("n_machines must be >= 1")
    loads = [0.0] * n_machines
    heapq.heapify(loads)
    makespan = 0.0
    for duration in durations:
        start = heapq.heappop(loads)
        end = start + duration
        makespan = max(makespan, end)
        heapq.heappush(loads, end)
    return makespan


def theorem14_instance(k: int) -> WorstCaseInstance:
    """Theorem 14: (m = n^2 CPUs, n = 6k GPUs) with ratio ``-> 2 + 2/sqrt 3``.

    Priorities select the adversarial execution: fillers first, then
    ``T1`` on the GPUs, and a spoliation order of the ``T2`` tasks that
    realises the worst list schedule of Figure 4.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    n = 6 * k
    m = n * n
    r = theorem14_r(n)
    x = (m - n) / (m + n * r) * n

    tasks: list[Task] = []
    # T1: n tasks, p = n, q = n / r.
    for i in range(n):
        tasks.append(Task(cpu_time=float(n), gpu_time=n / r, name=f"T1_{i}", priority=3.0))
    # T2: CPU time r n / 3 (shrunk by RHO_MARGIN so that the g = 2k tasks
    # have acceleration strictly below rho_T1 = r — an exact tie is
    # float-fragile and would let GPUs grab them before T1).  GPU
    # durations come from Figure 4; the adversarial spoliation order is
    # encoded by decreasing priorities.
    t2_cpu = r * n / 3.0 * (1.0 - RHO_MARGIN)
    grab_order = figure4_worst_order(k)
    for rank, duration in enumerate(grab_order):
        tasks.append(
            Task(
                cpu_time=t2_cpu,
                gpu_time=duration,
                name=f"T2_{rank}(g={duration:g})",
                priority=2.0 - rank * 1e-9,
            )
        )
    # T3: CPU fillers with acceleration 1 keeping every CPU busy until x.
    # x is not an integer in general, so instead of the paper's unit tasks
    # we emit ceil(x) tasks per CPU of size x/ceil(x) (same filling time).
    per_cpu = max(1, math.ceil(x))
    t3_size = x / per_cpu
    for i in range(m * per_cpu):
        tasks.append(Task(cpu_time=t3_size, gpu_time=t3_size, name=f"T3_{i}", priority=0.0))
    # T4: n x GPU fillers with acceleration strictly above r (GPU must
    # drain these before touching T1).
    t4_size = x / per_cpu
    for i in range(n * per_cpu):
        tasks.append(
            Task(
                cpu_time=t4_size * r * (1.0 + RHO_MARGIN),
                gpu_time=t4_size,
                name=f"T4_{i}",
                priority=4.0,
            )
        )

    # The g = 2k tasks finish the GPU list schedule at relative time
    # 2n - 1; the 6k task stays on its CPU (spoliation would not strictly
    # improve it) and finishes at x + t2_cpu = expected - O(RHO_MARGIN).
    heteroprio_expected = x + n / r + 2.0 * n - 1.0
    # Optimal: T2 packed on the GPUs in time n; T1 on n CPUs (time n);
    # fillers spread on the remaining m - n CPUs with load ~n each, with
    # a packing slack below the largest filler piece (plus the RHO_MARGIN
    # inflation of the T4 pieces).
    optimal_upper = float(n) * (1.0 + RHO_MARGIN) + t4_size * r * (1.0 + RHO_MARGIN)
    return WorstCaseInstance(
        instance=Instance(tasks),
        platform=Platform(num_cpus=m, num_gpus=n),
        optimal_upper=optimal_upper,
        heteroprio_expected=heteroprio_expected,
    )
