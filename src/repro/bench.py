# repro-lint: disable=float-equality -- the batch cases assert bitwise
# makespan equality against the scalar loops on purpose: the batch
# engine's contract is bit-identity, not closeness.
"""The ``repro bench`` perf-regression harness.

Benchmarks the simulator hot path on the paper's figure workloads and
emits a machine-readable report (``BENCH_simcore.json``):

* **fig7 cases** run one factorization DAG (cholesky N=20, qr N=14,
  lu N=14 — all >= 1000 tasks) through :class:`RuntimeSimulator` under
  the HeteroPrio, bucketed-HeteroPrio and HEFT policies, reading the
  hot-loop counters from :attr:`RuntimeSimulator.last_stats`;
* **fig6 cases** run the independent-task HeteroPrio core
  (:func:`repro.core.heteroprio.heteroprio_schedule`) on a 2000-task
  random instance.

Each case reports events/sec, pick-calls/sec, wall time and the
makespan (a cheap sanity check that the schedule did not change).  The
fig7 cases additionally break the end-to-end pipeline into phases —
``build_s`` (compiled graph construction), ``priorities_s`` (vectorized
bottom levels) and the simulate-phase ``wall_s`` — summed into
``end_to_end_s``, alongside the dict-path reference walls for the first
two phases (``dict_build_s``/``dict_priorities_s``) measured in the
same run, so the compiled pipeline's ``end_to_end_speedup`` is
self-contained and machine-independent.  ``end_to_end_vs_pre_pr``
extends the ``speedup_vs_pre_pr`` convention to the whole pipeline:
in-run dict-path build/priorities plus the recorded pre-overhaul
simulate wall, over the compiled pipeline's end-to-end.  ``wall_s`` and
``events_per_sec`` keep their historical simulate-only meaning, so old
baseline reports stay comparable.  The
report also embeds the wall times of the pre-optimization
implementation measured on the development machine
(:data:`PRE_PR_WALL_S`) — since the optimized loop produces the exact
same schedule event-for-event, the events/sec ratio equals the
wall-time ratio, so ``speedup_vs_pre_pr`` is meaningful on that
machine and indicative elsewhere.

With ``--batch``, the suite additionally runs the **batch cases**: the
same fig6/fig7 grids advanced through the lockstep batch kernels —
HeteroPrio, HEFT and DualHP, on the DAG engine
(:mod:`repro.simulator.batch`) and the offline independent schedulers
(:mod:`repro.schedulers.batch`) — hundreds of instances per call.  Each
batch case reports the aggregate ``batch_events_per_sec`` next to a
scalar reference measured on a sample of the same rows (whose makespans
the runner asserts bitwise-equal to the batch result; DualHP cases also
pin the accepted λ), plus the derived ``batch_speedup``.  The offline
HEFT/DualHP cases have no event loop; their unit of work is one
placement per task on both sides of the ratio.  The regression gate covers ``batch_events_per_sec``
with the same calibration-normalized threshold; a baseline key absent
from the current run is skipped with a note naming that key.

The **cache case** times the tiered result cache itself: one lookup
sweep over warm entries per tier, reported as
``cache_hit_memory_per_sec`` and ``cache_hit_disk_per_sec`` (both
gated) plus their ratio ``memory_over_disk`` — the speedup the
in-process LRU tier buys over re-reading the disk tier.

The **analyze case** times ``repro analyze`` over the repo's own tree,
cold (parse memo dropped) and warm (memo hit), reporting the gated
``analyze_modules_per_sec`` on the warm pass plus ``warm_over_cold`` —
the amortisation the per-module memo buys the CI lint job.

For CI regression checks, absolute events/sec is useless across
runners of different speeds.  Every report therefore includes a
*calibration* measurement (a fixed pure-Python heap workload timed at
report creation); :func:`compare` normalizes the current events/sec by
the calibration ratio before applying the regression threshold, which
absorbs runner-speed differences.
"""

from __future__ import annotations

import heapq
import json
import random
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterable

import numpy as np

from repro.core.heteroprio import heteroprio_schedule
from repro.core.platform import Platform
from repro.core.task import Instance, Task
from repro.dag.priorities import assign_priorities
from repro.experiments.workloads import PAPER_PLATFORM, build_compiled, build_graph
from repro.schedulers.batch import batch_dualhp_schedule, batch_heft_schedule
from repro.schedulers.dualhp import dualhp_schedule
from repro.schedulers.heft import heft_schedule
from repro.schedulers.online import make_policy
from repro.simulator.batch import batch_heteroprio_schedule, batch_simulate_dag
from repro.simulator.runtime import RuntimeSimulator

__all__ = [
    "BenchCase",
    "BENCH_CASES",
    "BATCH_CASES",
    "QUICK_CASES",
    "QUICK_BATCH_CASES",
    "PRE_PR_WALL_S",
    "run_bench",
    "compare",
    "main",
]

#: Current report layout version.
SCHEMA = 1

#: Wall times of the pre-optimization simulator/core on the same cases,
#: measured (best of 3) on the development machine before the hot-path
#: overhaul.  Kept verbatim so the report can state the speedup the
#: overhaul delivered; not used by the CI regression check.
PRE_PR_WALL_S: dict[str, float] = {
    "fig7:cholesky:n20:heteroprio": 0.1348,
    "fig7:cholesky:n20:buckets": 0.1522,
    "fig7:cholesky:n20:heft": 0.3913,
    "fig7:qr:n14:heteroprio": 0.1473,
    "fig7:qr:n14:buckets": 0.1540,
    "fig7:qr:n14:heft": 0.2675,
    "fig7:lu:n14:heteroprio": 0.0927,
    "fig7:lu:n14:buckets": 0.1112,
    "fig7:lu:n14:heft": 0.1715,
    "fig6:independent:n2000:heteroprio": 0.0194,
    # Derived, not measured: the n2000 measurement scaled by task count
    # (the pre-optimization core was linear in n on these instances).
    # Backfilled so the baseline gate has a pre_pr_wall_s for every
    # fig6 case instead of skipping this one.
    "fig6:independent:n500:heteroprio": 0.0049,
}

#: Policy short names used in case ids -> ``make_policy`` names.
_POLICIES = {
    "heteroprio": "heteroprio-avg",
    "buckets": "buckets",
    "heft": "heft-avg",
    "dualhp": "dualhp-avg",
}

#: Offline batch schedulers for the fig6 independent cases, by algorithm
#: short name (``heteroprio`` runs the lockstep simulator engine instead).
_INDEPENDENT_BATCH = {
    "dualhp": batch_dualhp_schedule,
    "heft": batch_heft_schedule,
}


@dataclass(frozen=True)
class BenchCase:
    """One benchmark case: a workload plus the policy that schedules it."""

    case_id: str
    runner: Callable[[int], dict]
    repeats: int = 3


def _dag_case(kernel: str, n_tiles: int, policy_key: str, repeats: int = 3) -> BenchCase:
    case_id = f"fig7:{kernel}:n{n_tiles}:{policy_key}"

    def runner(reps: int) -> dict:
        # Phase 1+2, compiled pipeline: struct-of-arrays graph build and
        # the vectorized priority sweep, each best-of-reps.
        build_s = float("inf")
        priorities_s = float("inf")
        graph = None
        for _ in range(reps):
            started = time.perf_counter()
            candidate = build_compiled(kernel, n_tiles)
            build_s = min(build_s, time.perf_counter() - started)
            started = time.perf_counter()
            assign_priorities(candidate, PAPER_PLATFORM, "avg")
            priorities_s = min(priorities_s, time.perf_counter() - started)
            graph = candidate
        # The dict-path reference for the same two phases, measured in
        # the same run so the end-to-end speedup is machine-independent.
        dict_build_s = float("inf")
        dict_priorities_s = float("inf")
        for _ in range(reps):
            started = time.perf_counter()
            dict_graph = build_graph(kernel, n_tiles)
            dict_build_s = min(dict_build_s, time.perf_counter() - started)
            started = time.perf_counter()
            assign_priorities(dict_graph, PAPER_PLATFORM, "avg")
            dict_priorities_s = min(dict_priorities_s, time.perf_counter() - started)
        # Phase 3: the simulator, on the compiled graph (event-for-event
        # identical to the dict path; ``wall_s`` keeps its historical
        # simulate-only meaning so old baselines stay comparable).
        best = None
        makespan = None
        for _ in range(reps):
            sim = RuntimeSimulator(graph, PAPER_PLATFORM, make_policy(_POLICIES[policy_key]))
            schedule = sim.run()
            stats = sim.last_stats
            assert stats is not None
            if best is None or stats.wall_s < best.wall_s:
                best = stats
                makespan = schedule.makespan
        payload = best.to_dict()
        payload["makespan"] = makespan
        payload["build_s"] = build_s
        payload["priorities_s"] = priorities_s
        payload["end_to_end_s"] = build_s + priorities_s + payload["wall_s"]
        payload["dict_build_s"] = dict_build_s
        payload["dict_priorities_s"] = dict_priorities_s
        payload["end_to_end_speedup"] = (
            (dict_build_s + dict_priorities_s + payload["wall_s"])
            / payload["end_to_end_s"]
        )
        return payload

    return BenchCase(case_id, runner, repeats)


def _independent_case(n_tasks: int, seed: int = 42, repeats: int = 3) -> BenchCase:
    case_id = f"fig6:independent:n{n_tasks}:heteroprio"

    def runner(reps: int) -> dict:
        # Phase 1: instance construction, best-of-reps — the fig6
        # analogue of the fig7 ``build_s`` phase, so ``end_to_end_s``
        # is present on every case in the report.
        build_s = float("inf")
        instance = None
        for _ in range(reps):
            rng = random.Random(seed)
            started = time.perf_counter()
            instance = Instance(
                [
                    Task(name=f"t{i}", cpu_time=rng.uniform(1.0, 50.0),
                         gpu_time=rng.uniform(0.5, 10.0))
                    for i in range(n_tasks)
                ]
            )
            build_s = min(build_s, time.perf_counter() - started)
        best = None
        for _ in range(reps):
            started = time.perf_counter()
            result = heteroprio_schedule(instance, PAPER_PLATFORM, compute_ns=False)
            wall = time.perf_counter() - started
            if best is None or wall < best["wall_s"]:
                spoliations = len(result.spoliations)
                # Every execution start pushes one completion event and
                # every event pops exactly once; a spoliation leaves one
                # stale event behind.
                events = n_tasks + spoliations
                best = {
                    "events": events,
                    "stale_events": spoliations,
                    "picks": 0,
                    "tasks": n_tasks,
                    "aborts": spoliations,
                    "wall_s": wall,
                    "events_per_sec": events / wall if wall > 0 else float("inf"),
                    "picks_per_sec": 0.0,
                    "makespan": result.makespan,
                }
        assert best is not None
        best["build_s"] = build_s
        best["end_to_end_s"] = build_s + best["wall_s"]
        return best

    return BenchCase(case_id, runner, repeats)


def _sample_rows(batch: int, sample: int) -> list[int]:
    """Evenly spread row indices to scalar-verify (first/middle/last)."""
    sample = max(1, min(sample, batch))
    if sample == 1:
        return [0]
    step = (batch - 1) / (sample - 1)
    return sorted({round(i * step) for i in range(sample)})


def _batch_dag_case(
    kernel: str,
    n_tiles: int,
    batch: int,
    policy_key: str = "heteroprio",
    sample: int = 3,
    repeats: int = 2,
) -> BenchCase:
    """A fig7 grid advanced in lockstep: *batch* rows of one DAG.

    Rows share the compiled graph and priorities but carry per-row
    duration noise, so spoliation patterns and event times diverge row
    to row and the engine's masked sub-stepping is actually exercised
    rather than replicating one trajectory.  A sample of rows is re-run
    through the scalar simulator for the throughput denominator, and
    the runner asserts the sampled makespans bitwise-equal to the batch
    result — the report's speedup is over *verified-identical* work.
    ``policy_key`` picks the policy kernel on both sides (``heteroprio``,
    ``heft`` or ``dualhp``).
    """
    case_id = f"batch:fig7:{kernel}:n{n_tiles}:{policy_key}:b{batch}"

    def runner(reps: int) -> dict:
        graph = build_compiled(kernel, n_tiles)
        levels = assign_priorities(graph, PAPER_PLATFORM, "avg")
        base_priorities = np.array([levels[task] for task in graph.tasks])
        priorities = np.tile(base_priorities, (batch, 1))
        rng = np.random.default_rng(20260807)
        factors = rng.uniform(0.8, 1.25, size=(batch, 1))
        cpu = graph.cpu_times[None, :] * factors
        gpu = graph.gpu_times[None, :] * factors
        result = None
        wall = float("inf")
        for _ in range(reps):
            started = time.perf_counter()
            candidate = batch_simulate_dag(
                graph,
                PAPER_PLATFORM,
                priorities,
                cpu_times=cpu,
                gpu_times=gpu,
                algorithm=policy_key,
            )
            elapsed = time.perf_counter() - started
            if elapsed < wall:
                result, wall = candidate, elapsed
        assert result is not None
        # One warmed clone for every sample row: the simulator reads
        # durations from the Task objects, so refreshing times in place
        # reuses the materialized task tuple, the task index and the
        # in-degree memo.  A fresh clone per row would pay those lazy
        # builds inside each sample's timed region, inflating the
        # scalar wall (and with it ``batch_speedup``) on small-n cases.
        clone = graph.with_durations(cpu[0].copy(), gpu[0].copy())
        clone_tasks = clone.tasks
        scalar_events = 0
        scalar_wall = 0.0
        for row in _sample_rows(batch, sample):
            for i, task in enumerate(clone_tasks):
                task.cpu_time = float(cpu[row, i])
                task.gpu_time = float(gpu[row, i])
                task.priority = float(base_priorities[i])
            sim = RuntimeSimulator(
                clone, PAPER_PLATFORM, make_policy(_POLICIES[policy_key])
            )
            schedule = sim.run()
            stats = sim.last_stats
            assert stats is not None
            scalar_events += stats.events
            scalar_wall += stats.wall_s
            assert schedule.makespan == float(result.makespans[row]), (
                f"{case_id}: batch row {row} diverged from the scalar loop"
            )
        return _batch_payload(
            result, wall, batch, scalar_events, scalar_wall, sample,
            independent=False,
        )

    return BenchCase(case_id, runner, repeats)


def _batch_independent_case(
    n_tasks: int,
    batch: int,
    algorithm: str = "heteroprio",
    seed: int = 42,
    sample: int = 4,
    repeats: int = 2,
) -> BenchCase:
    """The fig6 grid as one lockstep call: *batch* seeded instances.

    ``heteroprio`` runs the lockstep simulator engine; ``heft`` and
    ``dualhp`` run the offline batch schedulers
    (:mod:`repro.schedulers.batch`), whose unit of work is one placement
    per task on both sides of the speedup.
    """
    case_id = f"batch:fig6:independent:n{n_tasks}:{algorithm}:b{batch}"

    def runner(reps: int) -> dict:
        cpu = np.empty((batch, n_tasks))
        gpu = np.empty((batch, n_tasks))
        for row in range(batch):
            rng = random.Random(seed + row)
            for i in range(n_tasks):
                cpu[row, i] = rng.uniform(1.0, 50.0)
                gpu[row, i] = rng.uniform(0.5, 10.0)
        batch_fn = _INDEPENDENT_BATCH.get(algorithm, batch_heteroprio_schedule)
        result = None
        wall = float("inf")
        for _ in range(reps):
            started = time.perf_counter()
            candidate = batch_fn(cpu, gpu, PAPER_PLATFORM)
            elapsed = time.perf_counter() - started
            if elapsed < wall:
                result, wall = candidate, elapsed
        assert result is not None
        scalar_events = 0
        scalar_wall = 0.0
        for row in _sample_rows(batch, sample):
            instance = Instance(
                [
                    Task(name=f"t{i}", cpu_time=float(cpu[row, i]),
                         gpu_time=float(gpu[row, i]))
                    for i in range(n_tasks)
                ]
            )
            started = time.perf_counter()
            if algorithm == "heteroprio":
                scalar = heteroprio_schedule(
                    instance, PAPER_PLATFORM, compute_ns=False
                )
                scalar_wall += time.perf_counter() - started
                # Same counting convention as the fig6 scalar case.
                scalar_events += n_tasks + len(scalar.spoliations)
                makespan = scalar.makespan
            elif algorithm == "dualhp":
                dual = dualhp_schedule(instance, PAPER_PLATFORM)
                scalar_wall += time.perf_counter() - started
                scalar_events += n_tasks
                makespan = dual.schedule.makespan
                assert dual.lam == float(result.lams[row]), (
                    f"{case_id}: batch row {row} lambda diverged"
                )
            else:
                schedule = heft_schedule(instance, PAPER_PLATFORM)
                scalar_wall += time.perf_counter() - started
                scalar_events += n_tasks
                makespan = schedule.makespan
            assert makespan == float(result.makespans[row]), (
                f"{case_id}: batch row {row} diverged from the scalar core"
            )
        return _batch_payload(
            result, wall, batch, scalar_events, scalar_wall, sample,
            independent=True,
        )

    return BenchCase(case_id, runner, repeats)


def _batch_payload(
    result,
    wall: float,
    batch: int,
    scalar_events: int,
    scalar_wall: float,
    sample: int,
    *,
    independent: bool,
) -> dict:
    """Assemble one batch case's report payload."""
    stats = getattr(result, "stats", None)
    if stats is not None:
        # Count like the scalar loops do: the independent core leaves one
        # stale heap event per spoliation behind, which the batch engine
        # (no event heap in static mode) never materializes — add aborts
        # so scalar and batch events/sec measure the same work.  The DAG
        # engine already counts stale (phantom) events like the scalar
        # loop.
        events = stats.events + (stats.aborts if independent else 0)
        payload = stats.to_dict()
    else:
        # Offline batch schedulers (HEFT/DualHP) have no event loop; the
        # unit of work is one placement per task, mirroring the per-task
        # counting of their scalar references.
        events = len(result) * result.n_tasks
        payload = {
            "events": events,
            "stale_events": 0,
            "picks": 0,
            "tasks": events,
            "aborts": 0,
            "wall_s": wall,
            "events_per_sec": 0.0,
            "picks_per_sec": 0.0,
        }
    payload["events"] = events
    payload["wall_s"] = wall
    payload["events_per_sec"] = events / wall if wall > 0 else float("inf")
    payload["batch"] = batch
    payload["batch_events_per_sec"] = payload["events_per_sec"]
    payload["makespan"] = float(result.makespans.sum())
    payload["scalar_sample"] = sample
    payload["scalar_wall_s"] = scalar_wall
    payload["scalar_events_per_sec"] = (
        scalar_events / scalar_wall if scalar_wall > 0 else float("inf")
    )
    payload["batch_speedup"] = (
        payload["batch_events_per_sec"] / payload["scalar_events_per_sec"]
    )
    return payload


def _cache_case(n_specs: int, repeats: int = 3) -> BenchCase:
    """Result-cache hit throughput, per tier, on *n_specs* warm entries.

    Seeds a throwaway on-disk cache with synthetic payloads (the cache
    never looks inside ``metrics``), then times two full lookup sweeps:
    one on a fresh :class:`ResultCache` object (every hit is a disk
    read that feeds the memory tier) and one on an already-warm object
    (every hit is served from the in-process LRU).  The seeding pass
    warms the spec-hash memo, so both sweeps time tier access rather
    than hashing.  ``memory_over_disk`` is the headline number: how
    much the memory tier buys over re-reading the disk tier.
    """
    case_id = f"cache:result:n{n_specs}:tiers"

    def runner(reps: int) -> dict:
        import tempfile

        from repro.campaign.cache import ResultCache
        from repro.campaign.spec import InstanceSpec

        specs = [
            InstanceSpec(
                workload="cholesky",
                size=4 + i,
                algorithm="heteroprio",
                mode="dag",
                num_cpus=20,
                num_gpus=4,
                bound="auto",
            )
            for i in range(n_specs)
        ]
        metrics = {"ratio": 1.0, "makespan": 123.456, "lower_bound": 100.0}
        with tempfile.TemporaryDirectory() as tmp:
            seed = ResultCache(tmp)
            for spec in specs:
                seed.put(spec, metrics, elapsed_s=0.001)
            disk_wall = float("inf")
            for _ in range(reps):
                cold = ResultCache(tmp)  # fresh object: empty memory tier
                started = time.perf_counter()
                for spec in specs:
                    assert cold.get(spec) is not None
                disk_wall = min(disk_wall, time.perf_counter() - started)
                assert cold.stats.disk_hits == n_specs
            warm = ResultCache(tmp)
            for spec in specs:
                warm.get(spec)  # feed the memory tier
            # A single memory sweep is ~1 ms — below timer noise — so
            # each timed measurement runs several full passes.
            mem_passes = 8
            mem_wall = float("inf")
            for _ in range(reps):
                before = warm.stats.memory_hits
                started = time.perf_counter()
                for _ in range(mem_passes):
                    for spec in specs:
                        assert warm.get(spec) is not None
                mem_wall = min(mem_wall, time.perf_counter() - started)
                assert warm.stats.memory_hits - before == n_specs * mem_passes
            # Sanity: the memory tier hands back the payload bit-exactly.
            entry = warm.get(specs[0])
            assert entry is not None and entry["metrics"] == metrics
            makespan = float(entry["metrics"]["makespan"])
        mem_rate = (
            n_specs * mem_passes / mem_wall if mem_wall > 0 else float("inf")
        )
        disk_rate = n_specs / disk_wall if disk_wall > 0 else float("inf")
        return {
            "events": n_specs,
            "stale_events": 0,
            "picks": 0,
            "tasks": n_specs,
            "aborts": 0,
            "wall_s": mem_wall,
            "events_per_sec": mem_rate,
            "picks_per_sec": 0.0,
            "makespan": makespan,
            "cache_hit_memory_per_sec": mem_rate,
            "cache_hit_disk_per_sec": disk_rate,
            "memory_over_disk": mem_rate / disk_rate,
        }

    return BenchCase(case_id, runner, repeats)


def _analyze_case(repeats: int = 3) -> BenchCase:
    """Whole-program flow analysis throughput over the repo's own tree.

    Times two full ``repro analyze`` passes: a *cold* one after
    :func:`~repro.analysis.callgraph.clear_model_caches` (every module
    is re-read, re-parsed and re-normalized) and a *warm* one that hits
    the per-module parse memo (summaries and the checks re-run either
    way — the memo only amortises the AST work).  The gated number is
    ``analyze_modules_per_sec`` on the warm pass: it is what CI pays on
    every lint job after the first.  ``warm_over_cold`` reports what
    the memo buys.
    """
    case_id = "analyze:tree"

    def runner(reps: int) -> dict:
        from repro.analysis.callgraph import clear_model_caches
        from repro.analysis.flow import analyze_tree

        root = Path(__file__).resolve().parents[2]
        if not (root / "src" / "repro").is_dir():  # installed wheel, no tree
            return {
                "events": 0,
                "stale_events": 0,
                "picks": 0,
                "tasks": 0,
                "aborts": 0,
                "wall_s": 0.0,
                "events_per_sec": 0.0,
                "picks_per_sec": 0.0,
                "makespan": 0.0,
            }
        cold_wall = float("inf")
        modules = 0
        for _ in range(reps):
            clear_model_caches()
            started = time.perf_counter()
            report = analyze_tree(root)
            cold_wall = min(cold_wall, time.perf_counter() - started)
            modules = report.modules_checked
        warm_wall = float("inf")
        for _ in range(reps):
            started = time.perf_counter()
            warm = analyze_tree(root)
            warm_wall = min(warm_wall, time.perf_counter() - started)
            # The memo must not change the verdict, only the wall time.
            assert warm.modules_checked == modules
        warm_rate = modules / warm_wall if warm_wall > 0 else float("inf")
        cold_rate = modules / cold_wall if cold_wall > 0 else float("inf")
        return {
            "events": modules,
            "stale_events": 0,
            "picks": 0,
            "tasks": modules,
            "aborts": 0,
            "wall_s": warm_wall,
            "events_per_sec": warm_rate,
            "picks_per_sec": 0.0,
            "makespan": 0.0,
            "analyze_cold_s": cold_wall,
            "analyze_warm_s": warm_wall,
            "analyze_modules_per_sec": warm_rate,
            "warm_over_cold": cold_wall / warm_wall if warm_wall > 0 else 1.0,
            "analyze_cold_modules_per_sec": cold_rate,
        }

    return BenchCase(case_id, runner, repeats)


#: The full ``repro bench`` suite: the fig7 sweeps at n >= 1000 tasks,
#: plus the ``--quick`` smoke cases so the committed report doubles as
#: the CI regression baseline for ``repro bench --quick``.
BENCH_CASES: tuple[BenchCase, ...] = (
    _dag_case("cholesky", 12, "heteroprio"),
    _dag_case("cholesky", 12, "buckets"),
    _independent_case(500),
    _dag_case("cholesky", 20, "heteroprio"),
    _dag_case("cholesky", 20, "buckets"),
    _dag_case("cholesky", 20, "heft"),
    _dag_case("qr", 14, "heteroprio"),
    _dag_case("qr", 14, "buckets"),
    _dag_case("qr", 14, "heft"),
    _dag_case("lu", 14, "heteroprio"),
    _dag_case("lu", 14, "buckets"),
    _dag_case("lu", 14, "heft"),
    _independent_case(2000),
    _cache_case(256),
    _analyze_case(),
)

#: The ``--quick`` CI smoke subset (a few seconds total).
QUICK_CASES: tuple[BenchCase, ...] = (
    _dag_case("cholesky", 12, "heteroprio", repeats=2),
    _dag_case("cholesky", 12, "buckets", repeats=2),
    _independent_case(500, repeats=2),
    _cache_case(256, repeats=2),
    _analyze_case(repeats=2),
)

#: The lockstep batch-engine grids (``--batch``): the fig7 sweep and
#: the fig6 seed sweep, hundreds of rows per call.
BATCH_CASES: tuple[BenchCase, ...] = (
    _batch_dag_case("cholesky", 12, batch=128),
    _batch_dag_case("cholesky", 20, batch=256),
    _batch_dag_case("cholesky", 20, batch=256, policy_key="heft"),
    _batch_dag_case("qr", 14, batch=128),
    _batch_dag_case("lu", 14, batch=128),
    _batch_independent_case(2000, batch=256),
    _batch_independent_case(2000, batch=256, algorithm="dualhp"),
)

#: The ``--quick --batch`` CI smoke subset.
QUICK_BATCH_CASES: tuple[BenchCase, ...] = (
    _batch_dag_case("cholesky", 12, batch=32, sample=2, repeats=2),
    _batch_dag_case("cholesky", 12, batch=32, policy_key="heft", sample=2, repeats=2),
    _batch_independent_case(500, batch=64, sample=2, repeats=2),
    _batch_independent_case(
        500, batch=64, algorithm="dualhp", sample=2, repeats=2
    ),
)


def _calibrate(reps: int = 5) -> float:
    """Wall time of a fixed pure-Python heap workload (runner speed probe).

    Best of *reps* runs: the minimum measures the runner's steady-state
    speed, insulated from scheduler noise that a single run would pick up.
    """
    rng = random.Random(0)
    values = [rng.random() for _ in range(50_000)]
    best = float("inf")
    for _ in range(reps):
        started = time.perf_counter()
        heap: list[float] = []
        for v in values:
            heapq.heappush(heap, v)
        while heap:
            heapq.heappop(heap)
        best = min(best, time.perf_counter() - started)
    return best


def run_bench(
    cases: Iterable[BenchCase] | None = None,
    *,
    quick: bool = False,
    batch: bool = False,
) -> dict:
    """Run the suite and return the report dict (``BENCH_simcore.json``)."""
    if cases is None:
        cases = QUICK_CASES if quick else BENCH_CASES
        if batch:
            cases = tuple(cases) + (QUICK_BATCH_CASES if quick else BATCH_CASES)
    report: dict = {
        "schema": SCHEMA,
        "quick": quick,
        "calibration_s": _calibrate(),
        "cases": {},
    }
    for case in cases:
        payload = case.runner(case.repeats)
        pre = PRE_PR_WALL_S.get(case.case_id)
        if pre is not None:
            payload["pre_pr_wall_s"] = pre
            payload["speedup_vs_pre_pr"] = pre / payload["wall_s"]
            if "dict_build_s" in payload:
                # Pre-optimization pipeline: tracker build + dict
                # priorities (both measured in this run) + the recorded
                # pre-overhaul simulate wall — same convention as
                # ``speedup_vs_pre_pr``.
                payload["end_to_end_vs_pre_pr"] = (
                    payload["dict_build_s"] + payload["dict_priorities_s"] + pre
                ) / payload["end_to_end_s"]
        report["cases"][case.case_id] = payload
    return report


#: Throughput keys the baseline gate covers, in report order.
GATED_KEYS = (
    "events_per_sec",
    "batch_events_per_sec",
    "cache_hit_memory_per_sec",
    "cache_hit_disk_per_sec",
    "analyze_modules_per_sec",
)


def compare(
    current: dict,
    baseline: dict,
    *,
    threshold: float = 0.30,
    notes: list[str] | None = None,
) -> list[str]:
    """Regression check: current vs a committed baseline report.

    Throughput keys (:data:`GATED_KEYS`) are normalized by the
    calibration ratio so a slower CI runner does not read as a code
    regression.  Returns one message per (case, key) whose normalized
    value dropped more than *threshold* below the baseline (empty list
    = pass).  Cases present in only one report are skipped; a gated key
    the baseline carries but the current case lacks is skipped with a
    note naming that key appended to *notes* (when given) — never an
    error, so old and new report layouts stay cross-checkable.
    """
    failures: list[str] = []
    cur_calib = current.get("calibration_s") or 1.0
    base_calib = baseline.get("calibration_s") or 1.0
    scale = cur_calib / base_calib  # >1 when this runner is slower
    for case_id, base in baseline.get("cases", {}).items():
        cur = current.get("cases", {}).get(case_id)
        if cur is None:
            continue
        for key in GATED_KEYS:
            base_eps = base.get(key, 0.0)
            if not base_eps:
                continue
            if key not in cur:
                if notes is not None:
                    notes.append(
                        f"{case_id}: baseline has {key} but this run "
                        f"does not; skipped"
                    )
                continue
            normalized = cur[key] * scale
            ratio = normalized / base_eps
            if ratio < 1.0 - threshold:
                failures.append(
                    f"{case_id}: {key} fell to {ratio:.0%} of baseline "
                    f"({cur[key]:,.0f} vs {base_eps:,.0f}, "
                    f"calibration scale {scale:.2f})"
                )
    return failures


def render(report: dict) -> str:
    """Human-readable table of a bench report."""
    lines = [
        f"{'case':<44} {'tasks':>7} {'events/s':>12} "
        f"{'build (s)':>10} {'prio (s)':>9} {'sim (s)':>9} {'e2e (s)':>9} "
        f"{'e2e gain':>9} {'vs pre-PR':>10} {'e2e pre-PR':>11} "
        f"{'batch gain':>11}",
    ]

    def opt(value: float | None, width: int, fmt: str, suffix: str = "") -> str:
        if value is None:
            return f"{'-':>{width}}"
        return f"{value:>{width - len(suffix)}{fmt}}{suffix}"

    for case_id, payload in report["cases"].items():
        lines.append(
            f"{case_id:<44} {payload['tasks']:>7} "
            f"{payload['events_per_sec']:>12,.0f} "
            + opt(payload.get("build_s"), 10, ".4f") + " "
            + opt(payload.get("priorities_s"), 9, ".4f") + " "
            + f"{payload['wall_s']:>9.4f} "
            + opt(payload.get("end_to_end_s"), 9, ".4f") + " "
            + opt(payload.get("end_to_end_speedup"), 9, ".2f", "x") + " "
            + opt(payload.get("speedup_vs_pre_pr"), 10, ".2f", "x") + " "
            + opt(payload.get("end_to_end_vs_pre_pr"), 11, ".2f", "x") + " "
            + opt(payload.get("batch_speedup"), 11, ".2f", "x")
        )
    lines.append(f"calibration: {report['calibration_s']:.4f}s")
    return "\n".join(lines)


def main(
    *,
    quick: bool = False,
    batch: bool = False,
    out: str | None = None,
    baseline: str | None = None,
    threshold: float = 0.30,
) -> int:
    """The ``repro bench`` subcommand body; returns an exit code."""
    report = run_bench(quick=quick, batch=batch)
    print(render(report))
    if out:
        with open(out, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"[bench] report written to {out}")
    if baseline:
        with open(baseline) as fh:
            base = json.load(fh)
        # A baseline may carry case names this run did not produce (an
        # older suite layout, a renamed case, a full report checked
        # against a --quick run).  Those are warned about and skipped —
        # same convention as missing pre_pr_wall_s below — never an
        # error.
        unknown = sorted(set(base.get("cases", {})) - set(report["cases"]))
        if unknown:
            print(
                f"[bench] note: baseline has {len(unknown)} case(s) not in "
                f"this run ({', '.join(unknown)}); skipped"
            )
        notes: list[str] = []
        failures = compare(report, base, threshold=threshold, notes=notes)
        for note in notes:
            print(f"[bench] note: {note}")
        if failures:
            for message in failures:
                print(f"[bench] REGRESSION {message}")
            return 1
        print(f"[bench] no regression vs {baseline} (threshold {threshold:.0%})")
        # Recap the wall-time gain vs the pre-optimization implementation.
        # Not every baseline case carries a pre-PR measurement (the quick
        # smoke cases never did) — those are skipped with a note, never a
        # KeyError.
        skipped: list[str] = []
        for case_id, cur in report["cases"].items():
            base_case = base.get("cases", {}).get(case_id)
            if base_case is None:
                continue
            pre = base_case.get("pre_pr_wall_s")
            if pre is None:
                skipped.append(case_id)
                continue
            print(
                f"[bench] {case_id}: {pre / cur['wall_s']:.2f}x vs "
                f"pre-PR wall ({pre:.4f}s -> {cur['wall_s']:.4f}s)"
            )
        if skipped:
            print(
                f"[bench] note: no pre_pr_wall_s in baseline for "
                f"{len(skipped)} case(s) ({', '.join(sorted(skipped))}); skipped"
            )
    return 0
