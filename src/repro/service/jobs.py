# repro-lint: disable=wall-clock -- time.monotonic feeds only queue telemetry
# (job latency EWMA behind the Retry-After estimate); it never reaches a
# scheduling result, which is produced by execute_spec from the spec alone.
"""The async job queue: bounded concurrency, backpressure, retry, cancel.

The queue is the admission-control layer between the HTTP front end and
the dispatcher.  Contracts:

* **bounded and backpressured** — at most ``capacity`` jobs may be
  live (queued + running); a submit past that raises
  :class:`QueueFull` carrying a ``retry_after_s`` estimate, which the
  server translates into ``429`` + ``Retry-After``;
* **bounded concurrency** — ``concurrency`` asyncio workers drain the
  queue; everything else waits in FIFO order;
* **retry with exponential backoff + jitter** — a failing job is
  re-run according to its request's
  :class:`~repro.service.models.RetryPolicy`; delays are deterministic
  per (job id, attempt) and the sleep is injectable, so the schedule is
  unit-testable without waiting;
* **cancellation** — queued jobs are cancelled in place, running jobs
  get their runner task cancelled; either way the job settles exactly
  once;
* **continue-on-error batches** — :meth:`JobQueue.submit_batch` admits
  a batch atomically (all or 429), :meth:`JobQueue.wait_batch` either
  lets every item run or cancels the unstarted remainder after the
  first failure.
"""

from __future__ import annotations

import asyncio
import itertools
import math
import time
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Awaitable, Callable, Sequence

from repro.service.models import BatchRequest, ScheduleRequest

__all__ = ["JobState", "Job", "JobQueue", "QueueFull"]


class QueueFull(Exception):
    """The queue is at capacity; retry after ``retry_after_s`` seconds."""

    def __init__(self, retry_after_s: float, capacity: int):
        self.retry_after_s = retry_after_s
        self.capacity = capacity
        super().__init__(
            f"job queue is at capacity ({capacity}); retry in {retry_after_s:.0f}s"
        )


class JobState(str, Enum):
    QUEUED = "queued"
    RUNNING = "running"
    SUCCEEDED = "succeeded"
    FAILED = "failed"
    CANCELLED = "cancelled"

    @property
    def terminal(self) -> bool:
        return self in (JobState.SUCCEEDED, JobState.FAILED, JobState.CANCELLED)


@dataclass
class Job:
    """One admitted request and everything that happened to it."""

    id: str
    request: ScheduleRequest
    key: str  # content address of the underlying spec (cache key)
    state: JobState = JobState.QUEUED
    attempts: int = 0
    result: dict[str, Any] | None = None
    cached: bool = False
    error: str | None = None
    elapsed_s: float = 0.0
    _done: asyncio.Event = field(default_factory=asyncio.Event, repr=False)
    _run_task: "asyncio.Task[None] | None" = field(default=None, repr=False)
    _settled: bool = field(default=False, repr=False)

    def to_dict(self) -> dict[str, Any]:
        """Status payload (no metrics — those travel in result events)."""
        return {
            "job": self.id,
            "key": self.key,
            "state": self.state.value,
            "attempts": self.attempts,
            "cached": self.cached,
            "error": self.error,
            "tenant": self.request.tenant,
        }


#: The runner executes one admitted job and returns its result payload:
#: ``(metrics, cached, elapsed_s)``.  Raising marks the attempt failed
#: (and eligible for retry); the queue never interprets metrics.
JobRunner = Callable[[Job], Awaitable[tuple[dict[str, Any], bool, float]]]

SleepFn = Callable[[float], Awaitable[None]]


class JobQueue:
    """Admission control and retry orchestration over a :data:`JobRunner`."""

    def __init__(
        self,
        runner: JobRunner,
        *,
        capacity: int = 64,
        concurrency: int = 4,
        sleep: SleepFn | None = None,
    ):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if concurrency < 1:
            raise ValueError("concurrency must be >= 1")
        self._runner = runner
        self.capacity = capacity
        self.concurrency = concurrency
        self._sleep: SleepFn = asyncio.sleep if sleep is None else sleep
        self._pending: "asyncio.Queue[Job]" = asyncio.Queue()
        self._jobs: dict[str, Job] = {}
        self._live = 0  # queued + running (the capacity measure)
        self._ids = itertools.count(1)
        self._workers: list[asyncio.Task[None]] = []
        self._closing = False
        # EWMA of recent runner durations, seeding the Retry-After
        # estimate; starts at 1s so an empty queue suggests a quick retry.
        self._avg_run_s = 1.0
        self.stats_counters = {
            "submitted": 0,
            "rejected": 0,
            "succeeded": 0,
            "failed": 0,
            "cancelled": 0,
            "retries": 0,
        }

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        """Spawn the worker tasks (call from a running event loop)."""
        if self._workers:
            return
        self._workers = [
            asyncio.get_running_loop().create_task(self._worker())
            for _ in range(self.concurrency)
        ]

    async def close(self) -> None:
        """Cancel the workers and settle every live job as cancelled."""
        self._closing = True
        for worker in self._workers:
            worker.cancel()
        for worker in self._workers:
            try:
                await worker
            except asyncio.CancelledError:
                pass
        self._workers = []
        for job in self._jobs.values():
            if not job.state.terminal:
                job.state = JobState.CANCELLED
                job.error = "server shutting down"
                self._settle(job)

    # -- admission -----------------------------------------------------------

    @property
    def depth(self) -> int:
        """Live jobs (queued + running) counted against ``capacity``."""
        return self._live

    def retry_after_s(self) -> float:
        """Estimated seconds until a slot frees up (the 429 hint)."""
        per_wave = max(1, self.concurrency)
        waves = max(1.0, self._live / per_wave)
        return float(max(1, math.ceil(waves * self._avg_run_s)))

    def submit(self, request: ScheduleRequest, *, key: str) -> Job:
        """Admit one request, or raise :class:`QueueFull` at capacity."""
        if self._live >= self.capacity:
            self.stats_counters["rejected"] += 1
            raise QueueFull(self.retry_after_s(), self.capacity)
        job = Job(id=f"j{next(self._ids):06d}", request=request, key=key)
        self._jobs[job.id] = job
        self._live += 1
        self.stats_counters["submitted"] += 1
        self._pending.put_nowait(job)
        return job

    def submit_batch(self, batch: BatchRequest, *, keys: Sequence[str]) -> list[Job]:
        """Admit a whole batch atomically: all items, or :class:`QueueFull`.

        Partial admission would make continue-on-error semantics
        ambiguous (was the missing item rejected or cancelled?), so a
        batch that does not fit is rejected in one piece.
        """
        if self._live + len(batch.requests) > self.capacity:
            self.stats_counters["rejected"] += 1
            raise QueueFull(self.retry_after_s(), self.capacity)
        return [
            self.submit(request, key=key)
            for request, key in zip(batch.requests, keys)
        ]

    # -- observation and control ---------------------------------------------

    def get(self, job_id: str) -> Job | None:
        return self._jobs.get(job_id)

    async def wait(self, job: Job) -> Job:
        """Block until *job* settles; returns it for chaining."""
        await job._done.wait()
        return job

    async def wait_batch(
        self, jobs: Sequence[Job], *, continue_on_error: bool = True
    ) -> list[Job]:
        """Wait for a batch in submission order, honouring error policy.

        With ``continue_on_error`` every job runs to its own conclusion.
        Without it, the first failure cancels every not-yet-settled
        sibling (running ones included), mirroring fail-fast pipelines.
        """
        failed = False
        for job in jobs:
            if failed:
                self.cancel(job.id)
            await self.wait(job)
            if job.state is JobState.FAILED and not continue_on_error:
                failed = True
        return list(jobs)

    def cancel(self, job_id: str) -> bool:
        """Cancel a job; returns whether anything was cancelled.

        Queued jobs settle immediately (the worker skips them when they
        surface); running jobs get their runner task cancelled and
        settle through the worker.  Terminal jobs are left alone.
        """
        job = self._jobs.get(job_id)
        if job is None or job.state.terminal:
            return False
        if job.state is JobState.QUEUED:
            job.state = JobState.CANCELLED
            job.error = "cancelled while queued"
            self._settle(job)
            return True
        if job._run_task is not None:
            job._run_task.cancel()
            return True
        return False

    def stats(self) -> dict[str, Any]:
        return {
            **self.stats_counters,
            "depth": self._live,
            "capacity": self.capacity,
            "concurrency": self.concurrency,
            "retry_after_s": self.retry_after_s(),
        }

    # -- internals -----------------------------------------------------------

    def _settle(self, job: Job) -> None:
        """Mark *job* finished exactly once (idempotent)."""
        if job._settled:
            return
        job._settled = True
        self._live -= 1
        if job.state is JobState.SUCCEEDED:
            self.stats_counters["succeeded"] += 1
        elif job.state is JobState.FAILED:
            self.stats_counters["failed"] += 1
        elif job.state is JobState.CANCELLED:
            self.stats_counters["cancelled"] += 1
        job._done.set()

    async def _worker(self) -> None:
        while True:
            job = await self._pending.get()
            try:
                if job._settled:  # cancelled while queued
                    continue
                job.state = JobState.RUNNING
                job._run_task = asyncio.get_running_loop().create_task(
                    self._run_with_retries(job)
                )
                try:
                    await job._run_task
                except asyncio.CancelledError:
                    # Cancelling this worker cancels the awaited run task
                    # first (asyncio delegates cancel to the future being
                    # awaited), so by the time we get here the run task is
                    # already done either way — only the explicit closing
                    # flag can distinguish queue teardown from a per-job
                    # cancel.
                    run_task = job._run_task
                    if run_task is not None and not run_task.done():
                        run_task.cancel()
                        try:
                            await run_task
                        except (asyncio.CancelledError, Exception):
                            pass
                    job.state = JobState.CANCELLED
                    if self._closing:
                        # The *queue* is shutting down: settle and exit.
                        job.error = job.error or "server shutting down"
                        job._run_task = None
                        self._settle(job)
                        raise
                    # The *job* was cancelled (not the worker): settle it
                    # and keep serving the queue.
                    job.error = job.error or "cancelled while running"
                finally:
                    job._run_task = None
                    self._settle(job)
            finally:
                self._pending.task_done()

    async def _run_with_retries(self, job: Job) -> None:
        policy = job.request.retry
        max_attempts = policy.limit + 1
        for attempt in range(1, max_attempts + 1):
            job.attempts = attempt
            started = time.monotonic()
            try:
                metrics, cached, elapsed_s = await self._runner(job)
            except asyncio.CancelledError:
                raise
            except Exception as exc:
                job.error = f"{type(exc).__name__}: {exc}"
                if attempt >= max_attempts:
                    job.state = JobState.FAILED
                    return
                self.stats_counters["retries"] += 1
                await self._sleep(policy.delay_for(attempt, token=job.id))
            else:
                self._avg_run_s += 0.2 * ((time.monotonic() - started) - self._avg_run_s)
                job.result = metrics
                job.cached = cached
                job.elapsed_s = elapsed_s
                job.error = None
                job.state = JobState.SUCCEEDED
                return
