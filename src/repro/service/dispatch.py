# repro-lint: disable=wall-clock -- time.monotonic here times executor round
# trips for the stats endpoint only; metrics payloads are computed by
# execute_spec, which is deterministic in the spec and never sees the clock.
"""The bridge between the async service and the campaign engine.

One :class:`Dispatcher` owns the compute resources of a server:

* **warm path** — a request whose spec is already in the tenant's
  :class:`~repro.campaign.cache.ResultCache` is answered without
  touching an executor (counted in ``cache_hits``): from the in-process
  memory tier when it is warm — a ``prefetch`` or an earlier request
  populates it — falling back to a disk read that feeds the tier;
* **single-flight** — concurrent requests for the same (tenant, spec
  hash) coalesce onto one in-flight execution; followers await the
  leader's future instead of recomputing (counted in ``coalesced``);
* **cold path** — misses run :func:`repro.campaign.execute_spec_cached`
  on a ``multiprocessing`` pool via ``loop.run_in_executor`` (the pool
  blocks a default-executor thread, the simulation runs in a forked
  worker), so CPU-bound scheduling work never stalls the event loop;
* **tenant namespaces** — each tenant's results live under
  ``<cache root>/tenants/<tenant>/``; the tenant is folded into the
  cache *directory*, never into the content hash, so identical specs
  share a key across namespaces while their entries stay isolated.
  Compiled graphs are tenant-independent content and stay shared in
  ``<cache root>/graphs`` via the campaign
  :class:`~repro.campaign.graph_store.GraphStore`.

``workers=0`` runs simulations inline on the default thread executor,
serialised by a lock (the per-process graph memos are mutable shared
state) — the deterministic mode the tests and CI smoke runs use.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import time
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Any, Callable

from repro.campaign.cache import CacheStats, ResultCache
from repro.campaign.executor import (
    ensure_graph_store,
    execute_spec_batch,
    fallback_breakdown,
    execute_spec_cached,
    plan_batches,
)
from repro.campaign.spec import CODE_VERSION, InstanceSpec

__all__ = ["DispatchResult", "Dispatcher", "namespaced_cache"]


def namespaced_cache(cache: ResultCache, tenant: str) -> ResultCache:
    """The per-tenant view of *cache*: same salt, tenant-scoped directory.

    The empty tenant is the root namespace (the cache itself), so
    anonymous requests and the ``repro campaign`` CLI share entries.
    """
    if not tenant:
        return cache
    return ResultCache(cache.root / "tenants" / tenant, salt=cache.salt)


@dataclass(frozen=True)
class DispatchResult:
    """What one dispatched request produced."""

    metrics: dict[str, Any]
    cached: bool
    coalesced: bool
    elapsed_s: float
    key: str


class Dispatcher:
    """Cache-aware, deduplicating executor front end (one per server)."""

    def __init__(
        self,
        cache_root: str | Path | None,
        *,
        salt: str = CODE_VERSION,
        workers: int = 0,
        execute_fn: Callable[[InstanceSpec], dict[str, Any]] | None = None,
    ):
        self.salt = salt
        self._root_cache = (
            None if cache_root is None else ResultCache(cache_root, salt=salt)
        )
        self._tenant_caches: dict[str, ResultCache] = {}
        self._inflight: dict[
            tuple[str, str], "asyncio.Future[tuple[str, Any]]"
        ] = {}
        self._execute_fn = execute_fn
        self._inline_lock = asyncio.Lock()
        self._pool: Any = None
        if workers > 0 and execute_fn is None:
            methods = multiprocessing.get_all_start_methods()
            ctx = multiprocessing.get_context("fork" if "fork" in methods else None)
            self._pool = ctx.Pool(processes=workers)
        self.workers = workers if self._pool is not None else 0
        if self._root_cache is not None:
            # Forked pool workers inherit the process-global graph store,
            # so every process of the service shares one on-disk set of
            # compiled graphs (graph content is tenant-independent).
            ensure_graph_store(self._root_cache.root / "graphs", salt=salt)
        self.counters = {
            "requests": 0,
            "cache_hits": 0,
            "executed": 0,
            "coalesced": 0,
            "prefetched": 0,
            "errors": 0,
        }
        #: Per-algorithm counts of prefetch misses with no batch kernel
        #: (they stay cold until requested through the scalar path).
        self.prefetch_fallbacks: dict[str, int] = {}

    # -- caches --------------------------------------------------------------

    def cache_for(self, tenant: str) -> ResultCache | None:
        """The tenant's namespace cache (memoised), or ``None`` uncached."""
        if self._root_cache is None:
            return None
        cache = self._tenant_caches.get(tenant)
        if cache is None:
            cache = namespaced_cache(self._root_cache, tenant)
            self._tenant_caches[tenant] = cache
        return cache

    # -- execution -----------------------------------------------------------

    async def run(self, spec: InstanceSpec, *, tenant: str = "") -> DispatchResult:
        """Resolve one spec: warm hit, coalesced follow, or cold execute."""
        self.counters["requests"] += 1
        key = spec.spec_hash(salt=self.salt)
        cache = self.cache_for(tenant)
        if cache is not None:
            entry = cache.get(spec)
            if entry is not None:
                self.counters["cache_hits"] += 1
                return DispatchResult(
                    metrics=entry["metrics"],
                    cached=True,
                    coalesced=False,
                    elapsed_s=float(entry.get("elapsed_s", 0.0)),
                    key=key,
                )

        flight = (tenant, key)
        leader_future = self._inflight.get(flight)
        if leader_future is not None:
            self.counters["coalesced"] += 1
            outcome, value = await leader_future
            if outcome == "err":
                raise value
            return replace(value, coalesced=True)

        loop = asyncio.get_running_loop()
        future: "asyncio.Future[tuple[str, Any]]" = loop.create_future()
        self._inflight[flight] = future
        try:
            result = await self._execute(spec, cache, key)
        except BaseException as exc:
            self.counters["errors"] += 1
            # Settle followers with the same failure; a plain tuple (not
            # set_exception) so an unobserved future never warns.
            future.set_result(("err", exc))
            raise
        else:
            future.set_result(("ok", result))
            return result
        finally:
            self._inflight.pop(flight, None)

    async def prefetch(
        self, specs: list[InstanceSpec], *, tenant: str = ""
    ) -> int:
        """Warm the tenant cache by lockstep-batching the cold specs.

        Groups the cache misses of *specs* by shared batch key
        (:func:`repro.campaign.executor.plan_batches`) and runs each
        group through the vectorized batch engine, writing the results
        into *both* tiers of the tenant's cache — the parent-side
        ``put`` feeds the in-process memory tier, so the per-request
        lookups that follow are memory hits, not disk reads.  Best-effort and bit-exact: payloads are
        identical to the scalar path, so a request racing ahead of the
        warm-up merely recomputes the same entry.  Returns the number
        of specs warmed (0 when uncached or running behind a test
        execute seam).
        """
        cache = self.cache_for(tenant)
        if cache is None or self._execute_fn is not None:
            return 0
        misses = [spec for spec in specs if cache.get(spec) is None]
        for alg, count in fallback_breakdown(misses).items():
            self.prefetch_fallbacks[alg] = (
                self.prefetch_fallbacks.get(alg, 0) + count
            )
        groups = plan_batches(misses)
        if not groups:
            return 0
        loop = asyncio.get_running_loop()
        warmed = 0
        # The batch engine runs in the parent either way (numpy releases
        # the GIL); the inline lock serialises it against inline-mode
        # scalar executions sharing the per-process graph memos.
        async with self._inline_lock:
            for group in groups:
                batch_specs = [misses[i] for i in group]
                started = time.monotonic()
                payloads = await loop.run_in_executor(
                    None, execute_spec_batch, batch_specs
                )
                if payloads is None:
                    continue
                elapsed = (time.monotonic() - started) / len(batch_specs)
                for spec, metrics in zip(batch_specs, payloads):
                    cache.put(spec, metrics, elapsed_s=elapsed)
                warmed += len(batch_specs)
        self.counters["prefetched"] += warmed
        return warmed

    async def _execute(
        self, spec: InstanceSpec, cache: ResultCache | None, key: str
    ) -> DispatchResult:
        loop = asyncio.get_running_loop()
        started = time.monotonic()
        if self._execute_fn is not None:
            # Test seam: run the injected callable inline (serialised —
            # stubs may share state just like the real graph memos).
            fn = self._execute_fn
            async with self._inline_lock:
                metrics = await loop.run_in_executor(None, fn, spec)
            cached = False
            elapsed_s = time.monotonic() - started
            if cache is not None:
                cache.put(spec, metrics, elapsed_s=elapsed_s)
        elif self._pool is not None:
            # The blocking pool round trip parks on a default-executor
            # thread; the simulation itself runs in a forked worker.
            # Workers check and feed the tenant cache themselves (atomic
            # writes), so a result is durable the moment it returns.
            pool = self._pool
            metrics, cached, elapsed_s = await loop.run_in_executor(
                None, pool.apply, execute_spec_cached, (spec, cache)
            )
        else:
            # Inline mode: the per-process graph memos are shared mutable
            # state, so simulations are serialised by the lock.
            async with self._inline_lock:
                metrics, cached, elapsed_s = await loop.run_in_executor(
                    None, execute_spec_cached, spec, cache
                )
        if not cached:
            self.counters["executed"] += 1
        else:
            self.counters["cache_hits"] += 1
        return DispatchResult(
            metrics=metrics,
            cached=cached,
            coalesced=False,
            elapsed_s=elapsed_s,
            key=key,
        )

    # -- observation / lifecycle ---------------------------------------------

    def cache_tier_stats(self) -> dict[str, int]:
        """Tier counters summed over the root + tenant caches.

        Parent-process view: pool workers keep their own (discarded)
        counters, so in pool mode this reflects the warm path the
        dispatcher itself served — memory-tier hits from ``run`` and
        ``prefetch`` promotions included.
        """
        caches: dict[int, ResultCache] = {}
        if self._root_cache is not None:
            caches[id(self._root_cache)] = self._root_cache
        for cache in self._tenant_caches.values():
            caches[id(cache)] = cache  # tenant "" aliases the root cache
        total = CacheStats()
        for cache in caches.values():
            for name, value in cache.stats.to_dict().items():
                setattr(total, name, getattr(total, name) + value)
        return total.to_dict()

    def stats(self) -> dict[str, Any]:
        return {
            **self.counters,
            "prefetch_fallbacks": dict(sorted(self.prefetch_fallbacks.items())),
            "mode": "pool" if self._pool is not None else "inline",
            "workers": self.workers,
            "inflight": len(self._inflight),
            "tenants": sorted(self._tenant_caches),
            "cache_root": (
                None if self._root_cache is None else str(self._root_cache.root)
            ),
            "salt": self.salt,
            "cache_tiers": self.cache_tier_stats(),
        }

    def close(self) -> None:
        """Terminate the worker pool (idempotent; safe on error paths)."""
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.terminate()
            pool.join()
