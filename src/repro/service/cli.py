"""Bodies of the ``repro serve`` and ``repro submit`` subcommands.

Kept separate from :mod:`repro.cli` (argument plumbing) so the service
pipeline is importable and unit-testable without a parser::

    repro serve --port 8080 --cache-dir .repro-cache
    repro submit --spec request.json --port 8080
"""

from __future__ import annotations

import asyncio
import json
import sys
from typing import TextIO

from repro.campaign.cache import encode_value
from repro.io import canonical_dumps
from repro.service.client import ServiceClient, ServiceError
from repro.service.models import (
    BatchRequest,
    ScheduleRequest,
    ValidationError,
    load_request_file,
)
from repro.service.server import ScheduleServer

__all__ = ["run_serve", "run_submit"]


def run_serve(
    *,
    host: str = "127.0.0.1",
    port: int = 8080,
    cache_dir: str | None = ".repro-cache",
    capacity: int = 64,
    concurrency: int = 4,
    workers: int = 0,
    stderr: TextIO | None = None,
) -> int:
    """Run the scheduling server until interrupted; returns an exit code."""
    err = stderr if stderr is not None else sys.stderr

    async def _serve() -> None:
        server = ScheduleServer(
            host=host,
            port=port,
            cache_dir=cache_dir,
            capacity=capacity,
            concurrency=concurrency,
            workers=workers,
        )
        await server.start()
        mode = f"{workers} pool worker(s)" if workers > 0 else "inline execution"
        print(
            f"[serve] listening on http://{server.host}:{server.port} "
            f"({mode}, queue capacity {capacity}, concurrency {concurrency}, "
            f"cache: {cache_dir if cache_dir else 'disabled'})",
            file=err,
            flush=True,
        )
        try:
            await server.serve_forever()
        finally:
            await server.close()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        print("[serve] interrupted; shut down cleanly", file=err)
    return 0


def run_submit(
    *,
    spec: str,
    host: str = "127.0.0.1",
    port: int = 8080,
    stdout: TextIO | None = None,
    stderr: TextIO | None = None,
) -> int:
    """Submit a request file to a running server, streaming its events.

    Prints each NDJSON event to stdout as it arrives; exits 0 only if
    every submitted item succeeded.
    """
    out = stdout if stdout is not None else sys.stdout
    err = stderr if stderr is not None else sys.stderr
    try:
        request = load_request_file(spec)
    except ValidationError as exc:
        for problem in exc.errors:
            print(f"[submit] invalid spec: {problem}", file=err)
        return 2

    async def _submit() -> int:
        client = ServiceClient(host, port)
        if isinstance(request, BatchRequest):
            events = await client.submit_batch(request)
        else:
            assert isinstance(request, ScheduleRequest)
            events = await client.submit(request)
        ok = True
        for event in events:
            print(canonical_dumps(encode_value(event)), file=out)
            if event.get("event") in ("error", "cancelled"):
                ok = False
        return 0 if ok else 1

    try:
        return asyncio.run(_submit())
    except ServiceError as exc:
        retry = (
            f" (retry after {exc.retry_after_s:.0f}s)"
            if exc.retry_after_s is not None
            else ""
        )
        print(f"[submit] server refused: HTTP {exc.status}{retry}", file=err)
        print(json.dumps(exc.payload), file=err)
        return 1
    except (ConnectionError, OSError) as exc:
        print(f"[submit] cannot reach http://{host}:{port}: {exc}", file=err)
        return 1
