"""Scheduling-as-a-service: an async HTTP layer over the campaign engine.

The campaign engine (:mod:`repro.campaign`) is a batch library — every
consumer recomputes per invocation.  This package fronts it with a
long-lived asyncio service that validates scheduling requests, runs
them through the shared cache-backed engine, and streams results:

* :mod:`~repro.service.models` — typed request models
  (:class:`ScheduleRequest`, :class:`BatchRequest`, ...) with strict
  validation, empty-value coercion and canonical round-tripping; a
  request maps 1:1 onto an :class:`~repro.campaign.spec.InstanceSpec`
  cache key;
* :mod:`~repro.service.jobs` — a bounded async job queue with
  backpressure (429 + ``Retry-After``), per-job retry with exponential
  backoff + jitter, cancellation and continue-on-error batches;
* :mod:`~repro.service.dispatch` — the engine bridge: warm hits served
  from per-tenant :class:`~repro.campaign.cache.ResultCache`
  namespaces, duplicate in-flight requests coalesced (single-flight),
  cold misses executed on a ``multiprocessing`` pool off the event
  loop;
* :mod:`~repro.service.server` / :mod:`~repro.service.client` — a
  stdlib-only HTTP/1.1 server (``asyncio.start_server``) and the
  matching client;
* :mod:`~repro.service.cli` — the ``repro serve`` / ``repro submit``
  subcommand bodies.
"""

from repro.service.models import (
    BatchRequest,
    PlatformSpec,
    PolicySpec,
    RetryPolicy,
    ScheduleRequest,
    ValidationError,
    WorkloadSpec,
    load_request,
    load_request_file,
    load_request_text,
)
from repro.service.jobs import Job, JobQueue, JobState, QueueFull
from repro.service.dispatch import DispatchResult, Dispatcher, namespaced_cache
from repro.service.server import ScheduleServer
from repro.service.client import ServiceClient, ServiceError

__all__ = [
    "BatchRequest",
    "DispatchResult",
    "Dispatcher",
    "Job",
    "JobQueue",
    "JobState",
    "PlatformSpec",
    "PolicySpec",
    "QueueFull",
    "RetryPolicy",
    "ScheduleRequest",
    "ScheduleServer",
    "ServiceClient",
    "ServiceError",
    "ValidationError",
    "WorkloadSpec",
    "load_request",
    "load_request_file",
    "load_request_text",
    "namespaced_cache",
]
