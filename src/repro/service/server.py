# repro-lint: disable=wall-clock -- time.monotonic feeds the /healthz uptime
# counter only; response payloads carrying metrics are produced by the
# campaign engine and never depend on the server clock.
"""`repro serve` — a stdlib-only asyncio HTTP front end for the engine.

``asyncio.start_server`` plus a minimal HTTP/1.1 parser (no new
dependencies); every connection carries one request and is closed after
the response, with ``Connection: close`` delimiting streamed bodies.

Endpoints::

    GET    /healthz                 liveness + uptime
    GET    /v1/stats                queue + dispatcher counters
    POST   /v1/schedule             submit one request
    POST   /v1/batch                submit a batch
    GET    /v1/jobs/<id>            job status
    GET    /v1/jobs/<id>/result     wait for the job, stream its result
    DELETE /v1/jobs/<id>            cancel a job

``POST /v1/schedule`` defaults to synchronous streaming: the response is
``application/x-ndjson`` with an ``accepted`` event (the job id and
cache key) followed by a terminal ``result``/``error``/``cancelled``
event.  ``?wait=0`` returns ``202`` with the job id immediately;
poll ``/v1/jobs/<id>`` and fetch ``/v1/jobs/<id>/result``.  A submit
past queue capacity gets ``429`` with a ``Retry-After`` header.

Metrics travel NaN/inf-safe via the campaign cache codec
(:func:`repro.campaign.cache.encode_value`) and every body line is
canonical JSON, so equal results are byte-equal on the wire.
"""

from __future__ import annotations

import asyncio
import time
from typing import Any, Mapping
from urllib.parse import parse_qs, urlsplit

from repro.campaign.cache import encode_value
from repro.campaign.spec import CODE_VERSION
from repro.io import canonical_dumps
from repro.service.dispatch import Dispatcher
from repro.service.jobs import Job, JobQueue, JobState, QueueFull
from repro.service.models import (
    BatchRequest,
    ScheduleRequest,
    ValidationError,
    load_request_text,
)

__all__ = ["ScheduleServer", "HttpRequest"]

_MAX_HEADER_BYTES = 64 * 1024
_MAX_BODY_BYTES = 8 * 1024 * 1024

_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
}


class HttpRequest:
    """One parsed HTTP/1.1 request."""

    def __init__(
        self, method: str, target: str, headers: Mapping[str, str], body: bytes
    ):
        self.method = method
        parts = urlsplit(target)
        self.path = parts.path
        self.query = {
            key: values[-1] for key, values in parse_qs(parts.query).items()
        }
        self.headers = dict(headers)
        self.body = body


class _HttpError(Exception):
    def __init__(self, status: int, message: str, headers: dict[str, str] | None = None):
        self.status = status
        self.message = message
        self.headers = headers or {}
        super().__init__(message)


async def _read_request(reader: asyncio.StreamReader) -> HttpRequest | None:
    """Parse one request off the stream; ``None`` on a clean EOF."""
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise _HttpError(400, "truncated request head") from None
    except asyncio.LimitOverrunError:
        raise _HttpError(413, "request head too large") from None
    if len(head) > _MAX_HEADER_BYTES:
        raise _HttpError(413, "request head too large")
    lines = head.decode("latin-1").split("\r\n")
    request_line = lines[0].split(" ")
    if len(request_line) != 3 or not request_line[2].startswith("HTTP/1."):
        raise _HttpError(400, f"malformed request line {lines[0]!r}")
    method, target, _version = request_line
    headers: dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise _HttpError(400, f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()
    body = b""
    if "content-length" in headers:
        try:
            length = int(headers["content-length"])
        except ValueError:
            raise _HttpError(400, "malformed Content-Length") from None
        if length < 0 or length > _MAX_BODY_BYTES:
            raise _HttpError(413, "request body too large")
        body = await reader.readexactly(length)
    elif method in ("POST", "PUT"):
        raise _HttpError(400, "POST requires Content-Length")
    return HttpRequest(method, target, headers, body)


def _head_bytes(status: int, headers: dict[str, str]) -> bytes:
    lines = [f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}"]
    merged = {"connection": "close", **headers}
    lines.extend(f"{name}: {value}" for name, value in merged.items())
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")


def _json_body(payload: Any) -> bytes:
    return (canonical_dumps(encode_value(payload)) + "\n").encode("utf-8")


class ScheduleServer:
    """The long-lived scheduling service: queue + dispatcher + HTTP."""

    def __init__(
        self,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        cache_dir: str | None = ".repro-cache",
        salt: str = CODE_VERSION,
        capacity: int = 64,
        concurrency: int = 4,
        workers: int = 0,
        execute_fn: Any = None,
    ):
        self.host = host
        self.port = port
        self._config = {
            "cache_dir": cache_dir,
            "salt": salt,
            "capacity": capacity,
            "concurrency": concurrency,
            "workers": workers,
        }
        self._execute_fn = execute_fn
        self.dispatcher: Dispatcher | None = None
        self.queue: JobQueue | None = None
        self._server: "asyncio.Server | None" = None
        self._started_monotonic = 0.0

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        """Bring up the dispatcher, the queue and the listening socket."""
        cfg = self._config
        self.dispatcher = Dispatcher(
            cfg["cache_dir"],
            salt=str(cfg["salt"]),
            workers=int(cfg["workers"]),
            execute_fn=self._execute_fn,
        )
        self.queue = JobQueue(
            self._run_job,
            capacity=int(cfg["capacity"]),
            concurrency=int(cfg["concurrency"]),
        )
        self.queue.start()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._started_monotonic = time.monotonic()

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self.queue is not None:
            await self.queue.close()
        if self.dispatcher is not None:
            self.dispatcher.close()

    async def _run_job(self, job: Job) -> tuple[dict[str, Any], bool, float]:
        assert self.dispatcher is not None
        result = await self.dispatcher.run(
            job.request.to_instance_spec(), tenant=job.request.tenant
        )
        return result.metrics, result.cached, result.elapsed_s

    # -- connection handling -------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            try:
                request = await _read_request(reader)
                if request is None:
                    return
                await self._route(request, writer)
            except _HttpError as exc:
                await self._send_json(
                    writer, exc.status, {"error": exc.message}, headers=exc.headers
                )
            except ValidationError as exc:
                await self._send_json(
                    writer, 400, {"error": "invalid request", "details": exc.errors}
                )
            except (ConnectionError, asyncio.IncompleteReadError):
                pass  # client went away mid-exchange
            except Exception as exc:  # noqa: BLE001 - last-resort 500
                await self._send_json(
                    writer, 500, {"error": f"{type(exc).__name__}: {exc}"}
                )
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _route(self, request: HttpRequest, writer: asyncio.StreamWriter) -> None:
        method, path = request.method, request.path
        if path == "/healthz" and method == "GET":
            await self._send_json(writer, 200, self._health_payload())
        elif path == "/v1/stats" and method == "GET":
            await self._send_json(writer, 200, self._stats_payload())
        elif path == "/v1/schedule" and method == "POST":
            await self._handle_schedule(request, writer)
        elif path == "/v1/batch" and method == "POST":
            await self._handle_batch(request, writer)
        elif path.startswith("/v1/jobs/"):
            await self._handle_job(request, writer)
        elif path in ("/healthz", "/v1/stats", "/v1/schedule", "/v1/batch"):
            raise _HttpError(405, f"{method} not supported on {path}")
        else:
            raise _HttpError(404, f"no route for {path}")

    # -- endpoint bodies -----------------------------------------------------

    def _health_payload(self) -> dict[str, Any]:
        return {
            "status": "ok",
            "code_version": CODE_VERSION,
            "uptime_s": round(time.monotonic() - self._started_monotonic, 3),
        }

    def _stats_payload(self) -> dict[str, Any]:
        assert self.queue is not None and self.dispatcher is not None
        return {
            "queue": self.queue.stats(),
            "dispatcher": self.dispatcher.stats(),
        }

    def _parse_body(self, request: HttpRequest) -> Any:
        return load_request_text(request.body.decode("utf-8", errors="replace"))

    def _submit_or_429(self, model: ScheduleRequest) -> Job:
        assert self.queue is not None and self.dispatcher is not None
        try:
            return self.queue.submit(
                model, key=model.request_key(salt=self.dispatcher.salt)
            )
        except QueueFull as exc:
            raise _HttpError(
                429,
                str(exc),
                headers={"retry-after": str(int(exc.retry_after_s))},
            ) from None

    async def _handle_schedule(
        self, request: HttpRequest, writer: asyncio.StreamWriter
    ) -> None:
        model = self._parse_body(request)
        if isinstance(model, BatchRequest):
            raise ValidationError(
                "kind: got a batch payload; submit it to /v1/batch"
            )
        job = self._submit_or_429(model)
        if request.query.get("wait") == "0":
            await self._send_json(
                writer,
                202,
                {**job.to_dict(), "result_url": f"/v1/jobs/{job.id}/result"},
            )
            return
        assert self.queue is not None
        await self._start_ndjson(writer)
        await self._write_line(writer, {"event": "accepted", **job.to_dict()})
        await self.queue.wait(job)
        await self._write_line(writer, self._terminal_event(job))

    async def _handle_batch(
        self, request: HttpRequest, writer: asyncio.StreamWriter
    ) -> None:
        model = self._parse_body(request)
        if isinstance(model, ScheduleRequest):
            model = BatchRequest(requests=(model,))
        assert self.queue is not None and self.dispatcher is not None
        salt = self.dispatcher.salt
        keys = [item.request_key(salt=salt) for item in model.requests]
        try:
            jobs = self.queue.submit_batch(model, keys=keys)
        except QueueFull as exc:
            raise _HttpError(
                429,
                str(exc),
                headers={"retry-after": str(int(exc.retry_after_s))},
            ) from None
        await self._start_ndjson(writer)
        await self._write_line(
            writer,
            {
                "event": "accepted",
                "batch": [job.id for job in jobs],
                "continue_on_error": model.continue_on_error,
            },
        )
        # Warm each tenant's cache through the lockstep batch engine
        # before draining the per-job results.  Best-effort: jobs the
        # queue already started simply recompute the same (bit-exact)
        # payload instead of hitting the warm entry.
        by_tenant: dict[str, list[Any]] = {}
        for item in model.requests:
            by_tenant.setdefault(item.tenant, []).append(item.to_instance_spec())
        for tenant, tenant_specs in by_tenant.items():
            await self.dispatcher.prefetch(tenant_specs, tenant=tenant)
        failed = False
        for job in jobs:
            if failed:
                self.queue.cancel(job.id)
            await self.queue.wait(job)
            await self._write_line(writer, self._terminal_event(job))
            if job.state is JobState.FAILED and not model.continue_on_error:
                failed = True
        counts = {
            "succeeded": sum(1 for j in jobs if j.state is JobState.SUCCEEDED),
            "failed": sum(1 for j in jobs if j.state is JobState.FAILED),
            "cancelled": sum(1 for j in jobs if j.state is JobState.CANCELLED),
        }
        await self._write_line(writer, {"event": "batch_done", **counts})

    async def _handle_job(
        self, request: HttpRequest, writer: asyncio.StreamWriter
    ) -> None:
        assert self.queue is not None
        rest = request.path[len("/v1/jobs/") :]
        job_id, _, tail = rest.partition("/")
        job = self.queue.get(job_id)
        if job is None:
            raise _HttpError(404, f"unknown job {job_id!r}")
        if tail == "" and request.method == "GET":
            await self._send_json(writer, 200, job.to_dict())
        elif tail == "" and request.method == "DELETE":
            cancelled = self.queue.cancel(job.id)
            await self._send_json(
                writer, 200, {**job.to_dict(), "cancel_requested": cancelled}
            )
        elif tail == "result" and request.method == "GET":
            await self._start_ndjson(writer)
            await self.queue.wait(job)
            await self._write_line(writer, self._terminal_event(job))
        else:
            raise _HttpError(404, f"no route for {request.path}")

    def _terminal_event(self, job: Job) -> dict[str, Any]:
        if job.state is JobState.SUCCEEDED:
            return {
                "event": "result",
                **job.to_dict(),
                "elapsed_s": job.elapsed_s,
                "metrics": job.result,
            }
        if job.state is JobState.CANCELLED:
            return {"event": "cancelled", **job.to_dict()}
        return {"event": "error", **job.to_dict()}

    # -- response plumbing ---------------------------------------------------

    async def _send_json(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: Any,
        *,
        headers: dict[str, str] | None = None,
    ) -> None:
        body = _json_body(payload)
        head = {
            "content-type": "application/json",
            "content-length": str(len(body)),
            **(headers or {}),
        }
        writer.write(_head_bytes(status, head) + body)
        await writer.drain()

    async def _start_ndjson(self, writer: asyncio.StreamWriter) -> None:
        writer.write(
            _head_bytes(200, {"content-type": "application/x-ndjson"})
        )
        await writer.drain()

    async def _write_line(self, writer: asyncio.StreamWriter, payload: Any) -> None:
        writer.write(_json_body(payload))
        await writer.drain()
