"""Typed request/response models for the scheduling service.

The service speaks plain JSON over HTTP, but every request is parsed
into the frozen dataclasses here before anything executes — pydagu-style
typed specs with three properties the rest of the layer leans on:

* **strict validation** — unknown keys, wrong types and inconsistent
  (mode, algorithm, bound) combinations are rejected with a
  :class:`ValidationError` naming the offending field path, so a bad
  request dies at the door (HTTP 400) instead of inside a worker;
* **empty-value coercion** — ``null``, ``""``, ``{}`` and ``[]`` read
  as "field absent" and fall back to the model default, so hand-written
  ``curl`` payloads can omit or blank any optional field;
* **canonical round-tripping** — :meth:`ScheduleRequest.to_dict` /
  :meth:`ScheduleRequest.from_dict` are inverses and
  :meth:`ScheduleRequest.canonical_json` is byte-stable, mirroring the
  discipline of :mod:`repro.campaign.spec`.

A request maps 1:1 onto the campaign cache: ``to_instance_spec()``
yields the :class:`~repro.campaign.spec.InstanceSpec` the engine
executes and :meth:`ScheduleRequest.request_key` is exactly that spec's
``spec_hash`` — the tenant never enters the hash (it selects a cache
*namespace*, see :mod:`repro.service.dispatch`).
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Mapping

from repro.campaign.spec import CODE_VERSION, MODES, SEEDED_WORKLOADS, InstanceSpec
from repro.io import canonical_dumps

__all__ = [
    "ValidationError",
    "RetryPolicy",
    "WorkloadSpec",
    "PlatformSpec",
    "PolicySpec",
    "ScheduleRequest",
    "BatchRequest",
    "load_request",
    "load_request_text",
    "load_request_file",
    "WORKLOAD_FAMILIES",
    "INDEPENDENT_ALGORITHMS",
    "DAG_ALGORITHM_FAMILIES",
    "RANK_SCHEMES",
    "MAX_BATCH_SIZE",
]

#: Workload generator families the engine knows how to build.  Mirrors
#: the registries in :mod:`repro.campaign.executor` (duplicated so the
#: model layer stays importable without pulling in the simulator).
WORKLOAD_FAMILIES = ("chains", "cholesky", "layered", "lu", "qr")

#: Schedulers valid in ``independent`` mode (Figure 6 pipeline).
INDEPENDENT_ALGORITHMS = ("dualhp", "heft", "heteroprio")

#: Algorithm families valid in ``dag`` mode; the full name is
#: ``"<family>-<ranking>"`` (e.g. ``heteroprio-min``).
DAG_ALGORITHM_FAMILIES = ("buckets", "dualhp", "heft", "heteroprio")

#: Priority ranking schemes accepted by ``assign_priorities``.
RANK_SCHEMES = ("avg", "min", "fifo")

#: Lower-bound methods per mode.
_DAG_BOUNDS = ("auto", "lp", "mixed")
_INDEPENDENT_BOUNDS = ("area", "auto")

#: Hard ceiling on batch fan-out per request.
MAX_BATCH_SIZE = 1024

#: Tenant ids become cache directory names; keep them filesystem-safe.
_TENANT_ALLOWED = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789._-"
)
_TENANT_MAX_LEN = 64


class ValidationError(ValueError):
    """A request failed validation; ``errors`` lists ``path: problem``."""

    def __init__(self, errors: list[str] | str):
        self.errors = [errors] if isinstance(errors, str) else list(errors)
        super().__init__("; ".join(self.errors))


# -- coercion helpers ---------------------------------------------------------


def _is_empty(value: Any) -> bool:
    """Pydagu-style empty-value test: absent, null, "", {} and [] coerce
    to the field default."""
    return value is None or (isinstance(value, (str, dict, list)) and not value)


def _check_keys(data: Mapping[str, Any], allowed: tuple[str, ...], path: str) -> None:
    unknown = sorted(set(data) - set(allowed))
    if unknown:
        raise ValidationError(
            f"{path}: unknown field(s) {', '.join(unknown)} "
            f"(expected a subset of {', '.join(allowed)})"
        )


def _as_mapping(value: Any, path: str) -> Mapping[str, Any]:
    if not isinstance(value, Mapping):
        raise ValidationError(f"{path}: expected an object, got {type(value).__name__}")
    return value


def _as_str(value: Any, path: str) -> str:
    if not isinstance(value, str):
        raise ValidationError(f"{path}: expected a string, got {type(value).__name__}")
    return value


def _as_bool(value: Any, path: str) -> bool:
    if isinstance(value, bool):
        return value
    raise ValidationError(f"{path}: expected a boolean, got {type(value).__name__}")


def _as_int(value: Any, path: str, *, minimum: int | None = None) -> int:
    # Accept integral floats and numeric strings (curl payloads quote
    # freely); reject anything lossy.
    if isinstance(value, bool):
        raise ValidationError(f"{path}: expected an integer, got a boolean")
    if isinstance(value, float):
        if not value.is_integer():
            raise ValidationError(f"{path}: expected an integer, got {value!r}")
        value = int(value)
    elif isinstance(value, str):
        try:
            value = int(value, 10)
        except ValueError:
            raise ValidationError(
                f"{path}: expected an integer, got {value!r}"
            ) from None
    if not isinstance(value, int):
        raise ValidationError(f"{path}: expected an integer, got {type(value).__name__}")
    if minimum is not None and value < minimum:
        raise ValidationError(f"{path}: must be >= {minimum}, got {value}")
    return value


def _as_float(value: Any, path: str, *, minimum: float | None = None) -> float:
    if isinstance(value, bool):
        raise ValidationError(f"{path}: expected a number, got a boolean")
    if isinstance(value, str):
        try:
            value = float(value)
        except ValueError:
            raise ValidationError(
                f"{path}: expected a number, got {value!r}"
            ) from None
    if not isinstance(value, (int, float)):
        raise ValidationError(f"{path}: expected a number, got {type(value).__name__}")
    value = float(value)
    if minimum is not None and value < minimum:
        raise ValidationError(f"{path}: must be >= {minimum}, got {value}")
    return value


def _field(data: Mapping[str, Any], name: str, default: Any) -> Any:
    """The value of *name* in *data*, with empty-value coercion."""
    value = data.get(name)
    return default if _is_empty(value) else value


# -- models -------------------------------------------------------------------


@dataclass(frozen=True)
class RetryPolicy:
    """How the job queue retries a failing request.

    ``limit`` extra attempts beyond the first, waiting
    ``interval_s * backoff**(attempt-1)`` (capped at ``max_interval_s``)
    between attempts, stretched by up to ``jitter`` (a fraction) of
    deterministic, token-seeded noise so coordinated clients do not
    retry in lockstep.
    """

    limit: int = 0
    interval_s: float = 0.5
    backoff: float = 2.0
    max_interval_s: float = 30.0
    jitter: float = 0.0

    def __post_init__(self) -> None:
        errors = []
        if self.limit < 0:
            errors.append(f"retry.limit: must be >= 0, got {self.limit}")
        if self.interval_s <= 0:
            errors.append(f"retry.interval_s: must be > 0, got {self.interval_s}")
        if self.backoff < 1.0:
            errors.append(f"retry.backoff: must be >= 1, got {self.backoff}")
        if self.max_interval_s <= 0:
            errors.append(
                f"retry.max_interval_s: must be > 0, got {self.max_interval_s}"
            )
        if not 0.0 <= self.jitter <= 1.0:
            errors.append(f"retry.jitter: must be in [0, 1], got {self.jitter}")
        if errors:
            raise ValidationError(errors)

    def delay_for(self, attempt: int, *, token: str = "") -> float:
        """Seconds to wait after failed attempt number *attempt* (1-based).

        Deterministic: the jitter fraction is drawn from a
        ``random.Random`` seeded with ``token`` and the attempt number,
        so a given (job, attempt) always waits the same time.
        """
        base = min(self.interval_s * self.backoff ** (attempt - 1), self.max_interval_s)
        if self.jitter <= 0.0:
            return base
        fraction = random.Random(f"{token}:{attempt}").random()
        return base * (1.0 + self.jitter * fraction)

    def to_dict(self) -> dict[str, Any]:
        return {
            "limit": self.limit,
            "interval_s": self.interval_s,
            "backoff": self.backoff,
            "max_interval_s": self.max_interval_s,
            "jitter": self.jitter,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any], *, path: str = "retry") -> "RetryPolicy":
        data = _as_mapping(data, path)
        _check_keys(data, ("limit", "interval_s", "backoff", "max_interval_s", "jitter"), path)
        defaults = cls()
        return cls(
            limit=_as_int(_field(data, "limit", defaults.limit), f"{path}.limit"),
            interval_s=_as_float(
                _field(data, "interval_s", defaults.interval_s), f"{path}.interval_s"
            ),
            backoff=_as_float(
                _field(data, "backoff", defaults.backoff), f"{path}.backoff"
            ),
            max_interval_s=_as_float(
                _field(data, "max_interval_s", defaults.max_interval_s),
                f"{path}.max_interval_s",
            ),
            jitter=_as_float(_field(data, "jitter", defaults.jitter), f"{path}.jitter"),
        )


@dataclass(frozen=True)
class WorkloadSpec:
    """What to schedule: a named generator family and its parameters."""

    family: str
    size: int
    seed: int | None = None
    params: tuple[tuple[str, float], ...] = ()

    def __post_init__(self) -> None:
        if self.family not in WORKLOAD_FAMILIES:
            raise ValidationError(
                f"workload.family: unknown family {self.family!r} "
                f"(expected one of {', '.join(WORKLOAD_FAMILIES)})"
            )
        if self.size < 1:
            raise ValidationError(f"workload.size: must be >= 1, got {self.size}")
        if self.seed is None and self.family in SEEDED_WORKLOADS:
            raise ValidationError(
                f"workload.seed: family {self.family!r} is randomized and "
                "requires an explicit seed"
            )
        object.__setattr__(
            self, "params", tuple(sorted(tuple(p) for p in self.params))
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "family": self.family,
            "size": self.size,
            "seed": self.seed,
            "params": {name: value for name, value in self.params},
        }

    @classmethod
    def from_dict(
        cls, data: Mapping[str, Any], *, path: str = "workload"
    ) -> "WorkloadSpec":
        data = _as_mapping(data, path)
        _check_keys(data, ("family", "size", "seed", "params"), path)
        if _is_empty(data.get("family")):
            raise ValidationError(f"{path}.family: required")
        if _is_empty(data.get("size")):
            raise ValidationError(f"{path}.size: required")
        seed_raw = data.get("seed")
        params_raw = _field(data, "params", {})
        params_map = _as_mapping(params_raw, f"{path}.params")
        params = tuple(
            (
                _as_str(name, f"{path}.params key"),
                _as_float(value, f"{path}.params.{name}"),
            )
            for name, value in params_map.items()
        )
        return cls(
            family=_as_str(data["family"], f"{path}.family"),
            size=_as_int(data["size"], f"{path}.size"),
            seed=None if _is_empty(seed_raw) else _as_int(seed_raw, f"{path}.seed"),
            params=params,
        )


@dataclass(frozen=True)
class PlatformSpec:
    """The machine shape; defaults to the paper's 20 CPU + 4 GPU node."""

    num_cpus: int = 20
    num_gpus: int = 4

    def __post_init__(self) -> None:
        if self.num_cpus < 0 or self.num_gpus < 0:
            raise ValidationError("platform: resource counts must be non-negative")
        if self.num_cpus == 0 and self.num_gpus == 0:
            raise ValidationError("platform: needs at least one CPU or GPU")

    def to_dict(self) -> dict[str, Any]:
        return {"num_cpus": self.num_cpus, "num_gpus": self.num_gpus}

    @classmethod
    def from_dict(
        cls, data: Mapping[str, Any], *, path: str = "platform"
    ) -> "PlatformSpec":
        data = _as_mapping(data, path)
        _check_keys(data, ("num_cpus", "num_gpus"), path)
        defaults = cls()
        return cls(
            num_cpus=_as_int(
                _field(data, "num_cpus", defaults.num_cpus), f"{path}.num_cpus"
            ),
            num_gpus=_as_int(
                _field(data, "num_gpus", defaults.num_gpus), f"{path}.num_gpus"
            ),
        )


@dataclass(frozen=True)
class PolicySpec:
    """Which scheduler runs the workload, in which mode, against which bound."""

    algorithm: str
    mode: str = "dag"
    bound: str = "auto"

    def __post_init__(self) -> None:
        if self.mode not in MODES:
            raise ValidationError(
                f"policy.mode: unknown mode {self.mode!r} "
                f"(expected one of {', '.join(MODES)})"
            )
        if self.mode == "independent":
            if self.algorithm not in INDEPENDENT_ALGORITHMS:
                raise ValidationError(
                    f"policy.algorithm: {self.algorithm!r} is not an "
                    "independent-mode scheduler (expected one of "
                    f"{', '.join(INDEPENDENT_ALGORITHMS)})"
                )
            if self.bound not in _INDEPENDENT_BOUNDS:
                raise ValidationError(
                    f"policy.bound: independent mode uses the area bound, "
                    f"not {self.bound!r}"
                )
        else:
            family, _, ranking = self.algorithm.partition("-")
            if family not in DAG_ALGORITHM_FAMILIES:
                raise ValidationError(
                    f"policy.algorithm: unknown algorithm family {family!r} "
                    f"(expected one of {', '.join(DAG_ALGORITHM_FAMILIES)})"
                )
            if ranking and ranking not in RANK_SCHEMES:
                raise ValidationError(
                    f"policy.algorithm: unknown ranking {ranking!r} "
                    f"(expected one of {', '.join(RANK_SCHEMES)})"
                )
            if self.bound not in _DAG_BOUNDS:
                raise ValidationError(
                    f"policy.bound: unknown bound {self.bound!r} "
                    f"(expected one of {', '.join(_DAG_BOUNDS)})"
                )

    def to_dict(self) -> dict[str, Any]:
        return {"algorithm": self.algorithm, "mode": self.mode, "bound": self.bound}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any], *, path: str = "policy") -> "PolicySpec":
        data = _as_mapping(data, path)
        _check_keys(data, ("algorithm", "mode", "bound"), path)
        if _is_empty(data.get("algorithm")):
            raise ValidationError(f"{path}.algorithm: required")
        defaults_mode = "dag"
        mode = _as_str(_field(data, "mode", defaults_mode), f"{path}.mode")
        default_bound = "area" if mode == "independent" else "auto"
        return cls(
            algorithm=_as_str(data["algorithm"], f"{path}.algorithm"),
            mode=mode,
            bound=_as_str(_field(data, "bound", default_bound), f"{path}.bound"),
        )


def _validate_tenant(tenant: str) -> str:
    """Tenant ids are folded into cache *paths*; refuse anything that
    could escape the namespace directory."""
    if len(tenant) > _TENANT_MAX_LEN:
        raise ValidationError(
            f"tenant: at most {_TENANT_MAX_LEN} characters, got {len(tenant)}"
        )
    if tenant in (".", ".."):
        raise ValidationError(f"tenant: {tenant!r} is not a valid namespace")
    bad = sorted(set(tenant) - _TENANT_ALLOWED)
    if bad:
        raise ValidationError(
            f"tenant: invalid character(s) {', '.join(map(repr, bad))} "
            "(allowed: letters, digits, '.', '_', '-')"
        )
    return tenant


@dataclass(frozen=True)
class ScheduleRequest:
    """One scheduling request: workload + platform + policy (+ QoS knobs).

    ``tenant`` selects a cache namespace (a directory, never part of the
    content hash); ``retry`` governs how the job queue handles transient
    failures of this request.
    """

    workload: WorkloadSpec
    policy: PolicySpec
    platform: PlatformSpec = PlatformSpec()
    tenant: str = ""
    retry: RetryPolicy = RetryPolicy()

    def __post_init__(self) -> None:
        _validate_tenant(self.tenant)
        # Surface semantic spec errors (seed rules etc.) at validation
        # time rather than inside a worker.
        self.to_instance_spec()

    def to_instance_spec(self) -> InstanceSpec:
        """The campaign spec this request executes as."""
        try:
            return InstanceSpec(
                workload=self.workload.family,
                size=self.workload.size,
                algorithm=self.policy.algorithm,
                mode=self.policy.mode,
                num_cpus=self.platform.num_cpus,
                num_gpus=self.platform.num_gpus,
                bound=self.policy.bound,
                seed=self.workload.seed,
                params=self.workload.params,
            )
        except ValueError as exc:
            raise ValidationError(str(exc)) from None

    def request_key(self, *, salt: str = CODE_VERSION) -> str:
        """The cache key this request maps onto — exactly the spec hash.

        Equal requests (any field order, any empty-value spelling) get
        equal keys; the tenant deliberately never enters the hash.
        """
        return self.to_instance_spec().spec_hash(salt=salt)

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": "schedule",
            "workload": self.workload.to_dict(),
            "platform": self.platform.to_dict(),
            "policy": self.policy.to_dict(),
            "tenant": self.tenant,
            "retry": self.retry.to_dict(),
        }

    def canonical_json(self) -> str:
        """Byte-stable JSON encoding (sorted keys, canonical floats)."""
        return canonical_dumps(self.to_dict())

    @classmethod
    def from_dict(
        cls, data: Mapping[str, Any], *, path: str = "request"
    ) -> "ScheduleRequest":
        data = _as_mapping(data, path)
        _check_keys(
            data, ("kind", "workload", "platform", "policy", "tenant", "retry"), path
        )
        kind = _field(data, "kind", "schedule")
        if kind != "schedule":
            raise ValidationError(f"{path}.kind: expected 'schedule', got {kind!r}")
        if _is_empty(data.get("workload")):
            raise ValidationError(f"{path}.workload: required")
        if _is_empty(data.get("policy")):
            raise ValidationError(f"{path}.policy: required")
        platform_raw = _field(data, "platform", None)
        retry_raw = _field(data, "retry", None)
        return cls(
            workload=WorkloadSpec.from_dict(data["workload"], path=f"{path}.workload"),
            policy=PolicySpec.from_dict(data["policy"], path=f"{path}.policy"),
            platform=(
                PlatformSpec()
                if platform_raw is None
                else PlatformSpec.from_dict(platform_raw, path=f"{path}.platform")
            ),
            tenant=_as_str(_field(data, "tenant", ""), f"{path}.tenant"),
            retry=(
                RetryPolicy()
                if retry_raw is None
                else RetryPolicy.from_dict(retry_raw, path=f"{path}.retry")
            ),
        )


@dataclass(frozen=True)
class BatchRequest:
    """Several schedule requests submitted as one unit.

    ``continue_on_error=True`` (the default) runs every item regardless
    of failures; ``False`` cancels the not-yet-started remainder after
    the first failed item.
    """

    requests: tuple[ScheduleRequest, ...]
    continue_on_error: bool = True

    def __post_init__(self) -> None:
        if not self.requests:
            raise ValidationError("batch.requests: must not be empty")
        if len(self.requests) > MAX_BATCH_SIZE:
            raise ValidationError(
                f"batch.requests: at most {MAX_BATCH_SIZE} items, "
                f"got {len(self.requests)}"
            )

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": "batch",
            "continue_on_error": self.continue_on_error,
            "requests": [request.to_dict() for request in self.requests],
        }

    def canonical_json(self) -> str:
        return canonical_dumps(self.to_dict())

    @classmethod
    def from_dict(cls, data: Mapping[str, Any], *, path: str = "batch") -> "BatchRequest":
        data = _as_mapping(data, path)
        _check_keys(data, ("kind", "requests", "continue_on_error"), path)
        kind = _field(data, "kind", "batch")
        if kind != "batch":
            raise ValidationError(f"{path}.kind: expected 'batch', got {kind!r}")
        raw_requests = data.get("requests")
        if _is_empty(raw_requests):
            raise ValidationError(f"{path}.requests: required")
        if not isinstance(raw_requests, list):
            raise ValidationError(
                f"{path}.requests: expected a list, got {type(raw_requests).__name__}"
            )
        return cls(
            requests=tuple(
                ScheduleRequest.from_dict(item, path=f"{path}.requests[{i}]")
                for i, item in enumerate(raw_requests)
            ),
            continue_on_error=_as_bool(
                _field(data, "continue_on_error", True), f"{path}.continue_on_error"
            ),
        )


# -- parsing entry points -----------------------------------------------------


def load_request(data: Mapping[str, Any]) -> ScheduleRequest | BatchRequest:
    """Parse a decoded JSON payload into the matching request model.

    Dispatches on ``kind`` when present, else on the ``requests`` field
    (a batch) — so both the CLI and the server validate through this one
    code path.
    """
    data = _as_mapping(data, "request")
    kind = data.get("kind")
    if kind == "batch" or (kind is None and "requests" in data):
        return BatchRequest.from_dict(data)
    return ScheduleRequest.from_dict(data)


def load_request_text(text: str) -> ScheduleRequest | BatchRequest:
    """Parse raw JSON text (HTTP body / file contents) into a request."""
    try:
        payload = json.loads(text)
    except ValueError as exc:
        raise ValidationError(f"request body is not valid JSON: {exc}") from None
    return load_request(payload)


def load_request_file(path: str | Path) -> ScheduleRequest | BatchRequest:
    """Parse a request (or batch) from a JSON file on disk."""
    try:
        text = Path(path).read_text(encoding="utf-8")
    except OSError as exc:
        raise ValidationError(f"cannot read spec file {path}: {exc}") from None
    return load_request_text(text)
