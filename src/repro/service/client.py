"""A minimal asyncio HTTP client for the scheduling service.

Speaks exactly the dialect :mod:`repro.service.server` serves — one
request per connection, ``Connection: close``, NDJSON streams delimited
by EOF — using only the standard library.  Used by the test suite, the
``repro submit`` CLI and anyone scripting against a running server.

Metrics in ``result`` events are decoded back through the campaign
cache codec (:func:`repro.campaign.cache.decode_value`), so NaN and
infinite values round-trip the wire intact.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, AsyncIterator

from repro.campaign.cache import decode_value
from repro.service.models import BatchRequest, ScheduleRequest

__all__ = ["ServiceClient", "ServiceError", "HttpResponse"]


class ServiceError(Exception):
    """A non-2xx response; carries the status and parsed body."""

    def __init__(self, status: int, payload: Any, headers: dict[str, str]):
        self.status = status
        self.payload = payload
        self.headers = headers
        self.retry_after_s = _to_float(headers.get("retry-after"))
        super().__init__(f"HTTP {status}: {payload}")


def _to_float(value: str | None) -> float | None:
    if value is None:
        return None
    try:
        return float(value)
    except ValueError:
        return None


class HttpResponse:
    """One fully-read response."""

    def __init__(self, status: int, headers: dict[str, str], body: bytes):
        self.status = status
        self.headers = headers
        self.body = body

    def json(self) -> Any:
        return json.loads(self.body.decode("utf-8"))


class ServiceClient:
    """Client for one server address."""

    def __init__(self, host: str, port: int):
        self.host = host
        self.port = port

    # -- low-level HTTP ------------------------------------------------------

    async def _open(
        self, method: str, path: str, payload: Any = None
    ) -> tuple[int, dict[str, str], asyncio.StreamReader, asyncio.StreamWriter]:
        reader, writer = await asyncio.open_connection(self.host, self.port)
        body = b"" if payload is None else json.dumps(payload).encode("utf-8")
        head_lines = [
            f"{method} {path} HTTP/1.1",
            f"host: {self.host}:{self.port}",
            "connection: close",
        ]
        if body:
            head_lines.append("content-type: application/json")
        head_lines.append(f"content-length: {len(body)}")
        writer.write(("\r\n".join(head_lines) + "\r\n\r\n").encode("latin-1") + body)
        await writer.drain()

        status_line = (await reader.readline()).decode("latin-1").rstrip("\r\n")
        parts = status_line.split(" ", 2)
        if len(parts) < 2 or not parts[0].startswith("HTTP/1."):
            writer.close()
            raise ServiceError(0, f"malformed status line {status_line!r}", {})
        status = int(parts[1])
        headers: dict[str, str] = {}
        while True:
            line = (await reader.readline()).decode("latin-1").rstrip("\r\n")
            if not line:
                break
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        return status, headers, reader, writer

    async def request(self, method: str, path: str, payload: Any = None) -> HttpResponse:
        """One buffered request/response exchange."""
        status, headers, reader, writer = await self._open(method, path, payload)
        try:
            if "content-length" in headers:
                body = await reader.readexactly(int(headers["content-length"]))
            else:
                body = await reader.read()
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
        return HttpResponse(status, headers, body)

    async def stream(
        self, method: str, path: str, payload: Any = None
    ) -> AsyncIterator[dict[str, Any]]:
        """Issue a request and yield its NDJSON events one by one.

        A non-2xx status raises :class:`ServiceError` (with the decoded
        body) before anything is yielded.
        """
        status, headers, reader, writer = await self._open(method, path, payload)
        try:
            if status >= 300:
                body = await reader.read()
                raise ServiceError(status, _parse_maybe_json(body), headers)
            while True:
                line = await reader.readline()
                if not line:
                    break
                text = line.decode("utf-8").strip()
                if text:
                    yield json.loads(text)
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    # -- service verbs -------------------------------------------------------

    async def health(self) -> dict[str, Any]:
        return self._expect_ok(await self.request("GET", "/healthz"))

    async def stats(self) -> dict[str, Any]:
        return self._expect_ok(await self.request("GET", "/v1/stats"))

    async def job(self, job_id: str) -> dict[str, Any]:
        return self._expect_ok(await self.request("GET", f"/v1/jobs/{job_id}"))

    async def cancel(self, job_id: str) -> dict[str, Any]:
        return self._expect_ok(await self.request("DELETE", f"/v1/jobs/{job_id}"))

    async def submit(
        self, request: ScheduleRequest | dict[str, Any]
    ) -> list[dict[str, Any]]:
        """Submit one request, wait for it, return the decoded events.

        The final element is the terminal event; ``result`` events carry
        their metrics decoded (NaN/inf restored).
        """
        payload = (
            request.to_dict() if isinstance(request, ScheduleRequest) else request
        )
        return [
            _decode_event(event)
            async for event in self.stream("POST", "/v1/schedule", payload)
        ]

    async def submit_batch(
        self, batch: BatchRequest | dict[str, Any]
    ) -> list[dict[str, Any]]:
        """Submit a batch and collect its decoded event stream."""
        payload = batch.to_dict() if isinstance(batch, BatchRequest) else batch
        return [
            _decode_event(event)
            async for event in self.stream("POST", "/v1/batch", payload)
        ]

    @staticmethod
    def _expect_ok(response: HttpResponse) -> dict[str, Any]:
        payload = _parse_maybe_json(response.body)
        if response.status >= 300:
            raise ServiceError(response.status, payload, response.headers)
        if not isinstance(payload, dict):
            raise ServiceError(response.status, payload, response.headers)
        return payload


def _parse_maybe_json(body: bytes) -> Any:
    text = body.decode("utf-8", errors="replace").strip()
    try:
        return json.loads(text)
    except ValueError:
        return text


def _decode_event(event: dict[str, Any]) -> dict[str, Any]:
    if "metrics" in event and event["metrics"] is not None:
        event = {**event, "metrics": decode_value(event["metrics"])}
    return event
