"""Schedule metrics of Section 6.2 (Figures 7, 8 and 9).

Three quantities per run:

* the ratio of the makespan to the dependency-aware lower bound
  (Figure 7);
* the *equivalent acceleration factor* of each resource class — the
  acceleration of the fictitious task aggregating everything the class
  executed (Figure 8);
* the *normalized idle time* of each class — idle time (counting work on
  aborted, spoliated executions as idle, per the paper's footnote 1)
  divided by the amount of the class used in the lower-bound solution
  (Figure 9).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bounds.area import area_bound
from repro.core.platform import Platform, ResourceKind
from repro.core.schedule import Schedule
from repro.core.task import Instance

__all__ = ["RunMetrics", "compute_metrics"]


@dataclass(frozen=True)
class RunMetrics:
    """Aggregated metrics of one simulated run."""

    makespan: float
    lower_bound: float
    cpu_equivalent_acceleration: float
    gpu_equivalent_acceleration: float
    cpu_normalized_idle: float
    gpu_normalized_idle: float
    aborted_work: float
    spoliation_count: int

    @property
    def ratio(self) -> float:
        """Makespan normalised by the lower bound (the Figure 7 metric)."""
        return self.makespan / self.lower_bound if self.lower_bound > 0 else float("inf")


def compute_metrics(
    schedule: Schedule,
    platform: Platform,
    *,
    lower_bound: float,
) -> RunMetrics:
    """Compute the Section 6.2 metrics for a finished schedule.

    The idle-time normaliser is the per-class work of the *area bound*
    solution over the executed tasks, i.e. the amount of each resource
    the relaxed lower bound would consume — the denominator used by the
    paper's Figure 9.
    """
    instance = Instance(schedule.tasks())
    bound_solution = area_bound(instance, platform)
    cpu_used = bound_solution.cpu_load
    gpu_used = bound_solution.gpu_load

    cpu_idle = schedule.idle_time(ResourceKind.CPU)
    gpu_idle = schedule.idle_time(ResourceKind.GPU)
    return RunMetrics(
        makespan=schedule.makespan,
        lower_bound=lower_bound,
        cpu_equivalent_acceleration=schedule.equivalent_acceleration(ResourceKind.CPU),
        gpu_equivalent_acceleration=schedule.equivalent_acceleration(ResourceKind.GPU),
        cpu_normalized_idle=cpu_idle / cpu_used if cpu_used > 0 else float("inf"),
        gpu_normalized_idle=gpu_idle / gpu_used if gpu_used > 0 else float("inf"),
        aborted_work=schedule.aborted_work(),
        spoliation_count=len(schedule.aborted_placements()),
    )
