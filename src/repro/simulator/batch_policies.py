"""Array-level policy kernels for the lockstep batch engine.

The engine (:class:`repro.simulator.batch._LockstepEngine`) owns the
shared ``(B, n)`` dependency/worker-slot state and the settle-pass
structure; a *kernel* owns everything policy-specific — ready queues,
availability estimates, reassignment — and expresses each decision the
scalar policy makes as a masked vector operation over the whole batch.

The kernel contract (duck-typed; the engine never imports policy
classes):

``bind(engine)``
    Allocate per-batch state against the engine's arrays.
``on_ready(rows, tasks, t)``
    Newly ready tasks, flat and grouped by row, each row's group in the
    scalar announce order (``(-priority, uid)`` — the engine pre-sorts).
``serve_pass(t, snapshot, progress)``
    One settle pass: ``snapshot`` is the boolean ``(B, W)`` mask of
    slots idle at pass start; serve each at most once, start work via
    ``engine._start``/``engine._start_multi``, and set ``progress[b]``
    for rows that started anything (the engine re-passes those rows).

Every kernel here is **bit-identical** to its scalar reference policy
(``tests/test_batch_differential.py`` pins placements, makespans,
spoliations and ``SimStats`` event-for-event):

* :class:`HeteroPrioKernel` — the affinity-queue + spoliation logic the
  engine originally hard-coded, unchanged semantically;
* :class:`HeftKernel` — earliest-finish-time commitment at announce
  (``schedulers/online/heft.py``): per-class masked argmin over the
  ``(B, W)`` availability array reproduces ``AvailabilityHeap``'s
  ``(finish, CPUs-before-GPUs, index)`` tie-break, per-worker FIFO
  queues live as array-encoded linked lists;
* :class:`DualHPKernel` — the dual-queue pack policy
  (``schedulers/online/dualhp.py``): lazy λ binary search and the
  two-phase pack (forced classes, then acceleration-ordered optionals
  with CPU overflow) run as masked lockstep loops, with per-row
  ``lo``/``hi`` floats tracked exactly so every row's λ trajectory
  matches its scalar run bit-for-bit.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.core.heteroprio import batch_queue_order
from repro.core.schedule import TIME_EPS

__all__ = [
    "HeteroPrioKernel",
    "HeftKernel",
    "DualHPKernel",
    "make_dag_kernel",
    "DAG_KERNELS",
]

#: Relative λ tolerance of the scalar online DualHP search.  Duplicated
#: from :data:`repro.schedulers.online.dualhp.ONLINE_RTOL` (importing it
#: would pull the scalar policy module into *every* batch spec's salt
#: closure, re-keying HeteroPrio cache entries on DualHP edits); the
#: differential suite asserts the two constants stay equal.
ONLINE_RTOL = 1e-3


def _row_groups(
    rows: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Group a sorted row-id array: (first_ix, urows, counts, offsets).

    ``offsets`` is each element's position within its row group — the
    building block for per-row sequencing (seq stamps, queue positions,
    arrival counters) over flat ``np.nonzero``-shaped selections.
    """
    change = np.empty(rows.size, dtype=bool)
    change[0] = True
    np.not_equal(rows[1:], rows[:-1], out=change[1:])
    first_ix = np.flatnonzero(change)
    urows = rows[first_ix]
    counts = np.diff(np.append(first_ix, rows.size))
    offsets = np.arange(rows.size) - np.repeat(first_ix, counts)
    return first_ix, urows, counts, offsets


class HeteroPrioKernel:
    """HeteroPrio affinity queues + spoliation as array kernels.

    The queue is the static acceleration-factor order
    (:func:`repro.core.heteroprio.batch_queue_order`); independent rows
    pop from the two ends of a fixed window (O(1) pointers), DAG rows
    keep a boolean membership mask in sorted-position space and locate
    the ends with banded argmax.  Spoliation polls mirror the scalar
    victim rules exactly — see :meth:`_try_spoliate`.
    """

    name = "heteroprio"

    def __init__(self, *, migrate: bool = True, victim_rule: str = "priority"):
        self.migrate = migrate
        self.victim_rule = victim_rule

    def bind(self, engine) -> None:
        self.e = e = engine
        B, n = e.B, e.n
        self.order = batch_queue_order(e.cpu, e.gpu, e.prio)
        self.static_queue = e.static
        if self.static_queue:
            # Independent tasks: the queue only ever shrinks from its two
            # ends, so a [front, back] window is enough.
            self.front = np.zeros(B, dtype=np.int64)
            self.back = np.full(B, n - 1, dtype=np.int64)
        else:
            self.pos = np.empty((B, n), dtype=np.int64)
            np.put_along_axis(
                self.pos,
                self.order,
                np.broadcast_to(np.arange(n, dtype=np.int64), (B, n)),
                axis=1,
            )
            self.qmask = np.zeros((B, n), dtype=bool)
            self.qcount = np.zeros(B, dtype=np.int64)
            # Live-band hints: every queued position of row b lies in
            # [qlo[b], qhi[b]].  The band tightens as the two ends are
            # popped and re-widens on insertion, so the end-of-queue
            # argmax scans only the active band instead of all n slots.
            self.qlo = np.full(B, n, dtype=np.int64)
            self.qhi = np.full(B, -1, dtype=np.int64)

    def on_ready(self, rows: np.ndarray, tasks: np.ndarray, t: np.ndarray) -> None:
        if self.static_queue or rows.size == 0:
            return
        pp = self.pos[rows, tasks]
        self.qmask[rows, pp] = True
        np.add.at(self.qcount, rows, 1)
        np.minimum.at(self.qlo, rows, pp)
        np.maximum.at(self.qhi, rows, pp)

    # -- queue primitives --------------------------------------------------

    def _pop_queue(
        self, rows: np.ndarray, gpu_side: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Pop each row's queue from the CPU or GPU end; returns task ids."""
        e = self.e
        if self.static_queue:
            posv = np.where(gpu_side, self.back[rows], self.front[rows])
            tasks = self.order[rows, posv]
            self.back[rows[gpu_side]] -= 1
            self.front[rows[~gpu_side]] += 1
        else:
            lo = int(self.qlo[rows].min())
            hi = int(self.qhi[rows].max()) + 1
            sub = self.qmask[rows, lo:hi]  # (K, band) — argmax both ends
            fpos = sub.argmax(axis=1) + lo
            bpos = (hi - 1) - sub[:, ::-1].argmax(axis=1)
            posv = np.where(gpu_side, bpos, fpos)
            tasks = self.order[rows, posv]
            self.qmask[rows, posv] = False
            self.qcount[rows] -= 1
            # Rows in one call are distinct, so each hint moves once.
            self.qlo[rows[~gpu_side]] = fpos[~gpu_side] + 1
            self.qhi[rows[gpu_side]] = bpos[gpu_side] - 1
        durations = np.where(gpu_side, e.gpu[rows, tasks], e.cpu[rows, tasks])
        return tasks, durations

    def _queue_nonempty(self, rows: np.ndarray) -> np.ndarray:
        if self.static_queue:
            return self.front[rows] <= self.back[rows]
        return self.qcount[rows] > 0

    # -- spoliation --------------------------------------------------------

    def _try_spoliate(
        self,
        rows: np.ndarray,
        slots: np.ndarray,
        gpu_side: np.ndarray,
        t: np.ndarray,
        progress: np.ndarray,
    ) -> np.ndarray:
        """Poll rows whose queue ran dry for a spoliation victim.

        Returns a boolean array over *rows* marking which polls
        spoliated (the rest changed no state).

        Victim choice mirrors the scalar rules exactly: among running
        executions on the *other* resource class that the polling worker
        would finish strictly earlier (``now + new_time < end -
        TIME_EPS``), pick by maximal priority then latest completion
        (``victim_rule="priority"``, the DAG policy) or latest
        completion then maximal priority (``"completion"``, the
        independent loop), tie-broken by smallest task index.  The
        successive masked-max filters below implement that lexicographic
        choice; the exact float ``==`` against the column max selects
        ties, not approximate equality, which is why no epsilon belongs
        there.
        """
        e = self.e
        sub_end = e.w_end[rows]  # (K, W)
        sub_task = e.w_task[rows]
        running = e.exists[rows] & np.isfinite(sub_end)
        other = running & (e.is_gpu[rows] != gpu_side[:, None])
        if not other.any():
            return np.zeros(rows.size, dtype=bool)
        safe_task = np.where(other, sub_task, 0)
        rows_col = rows[:, None]
        new_time = np.where(
            gpu_side[:, None],
            e.gpu[rows_col, safe_task],
            e.cpu[rows_col, safe_task],
        )
        improving = other & (t[rows][:, None] + new_time < sub_end - TIME_EPS)
        found = improving.any(axis=1)
        if not found.any():
            return found
        fr = np.flatnonzero(found)
        imp = improving[fr]
        stc = safe_task[fr]
        k_prio = np.where(imp, e.prio[rows[fr][:, None], stc], -np.inf)
        k_end = np.where(imp, sub_end[fr], -np.inf)
        if self.victim_rule == "priority":
            k1, k2 = k_prio, k_end
        else:
            k1, k2 = k_end, k_prio
        m1 = k1.max(axis=1)
        tie1 = imp & (k1 == m1[:, None])
        k2m = np.where(tie1, k2, -np.inf)
        m2 = k2m.max(axis=1)
        tie2 = tie1 & (k2m == m2[:, None])
        cand_idx = np.where(tie2, stc, e.n)
        vtask = cand_idx.min(axis=1)
        vcol = (tie2 & (stc == vtask[:, None])).argmax(axis=1)

        rr = rows[fr]
        ss = slots[fr]
        ar = np.arange(fr.size)
        vend = sub_end[fr][ar, vcol]
        vstart = e.w_start[rr, vcol]
        ndur = new_time[fr][ar, vcol]
        now = t[rr]

        e.records.append(rr, vcol, vtask, vstart, now, True)
        sp = e._sp_chunks
        sp["rows"].append(rr)
        sp["tasks"].append(vtask)
        sp["vslots"].append(vcol)
        sp["nslots"].append(ss)
        sp["times"].append(now)
        sp["olds"].append(vend)
        sp["news"].append(now + ndur)

        e.w_end[rr, vcol] = np.inf
        e.w_task[rr, vcol] = -1
        e.stats.aborts += int(rr.size)
        if e.anchor_stale:
            # The scalar DAG loop leaves the victim's old completion in
            # its heap and lets it anchor a (possibly empty) window.
            for b, end in zip(rr.tolist(), vend.tolist()):
                heapq.heappush(e.phantoms.setdefault(b, []), end)
        e._start(rr, ss, vtask, now, ndur)
        progress[rr] = True
        return found

    # -- settle pass -------------------------------------------------------

    def serve_pass(
        self, t: np.ndarray, snapshot: np.ndarray, progress: np.ndarray
    ) -> None:
        """Serve one pass over the snapshot, in service order.

        Each *sub-iteration* serves at most one slot per row — rows at
        different service positions advance together.

        A failed empty-queue poll is stateless, and the queue cannot
        refill mid-settle, so once a row's poll of one resource class
        comes up empty every later poll of that class in the same pass
        must fail too: those slots are bulk-skipped (the class is marked
        *dead* for the rest of the pass), charging their ``pick()``
        calls to the stats in one add.  This collapses the
        empty-queue tail — per pass each row performs at most one
        meaningful poll per class plus its queue pops.
        """
        e = self.e
        cols = e._cols
        is_gpu = e.is_gpu
        ptr = np.zeros(e.B, dtype=np.int64)
        dead_cpu = np.zeros(e.B, dtype=bool)
        dead_gpu = np.zeros(e.B, dtype=bool)
        any_dead = False
        while True:
            eligible = snapshot & (cols >= ptr[:, None])
            if any_dead:
                eligible &= ~(is_gpu & dead_gpu[:, None])
                eligible &= is_gpu | ~dead_cpu[:, None]
            serving = eligible.any(axis=1)
            if not serving.any():
                break
            slot_of = eligible.argmax(axis=1)
            rset = np.flatnonzero(serving)
            svec = slot_of[rset]
            e.stats.picks += rset.size
            gpu_side = is_gpu[rset, svec]
            has_queue = self._queue_nonempty(rset)
            if has_queue.any():
                sel = np.flatnonzero(has_queue)
                pr, ps, pg = rset[sel], svec[sel], gpu_side[sel]
                tasks, durations = self._pop_queue(pr, pg)
                e._start(pr, ps, tasks, t[pr], durations)
                progress[pr] = True
            if not has_queue.all():
                sel = np.flatnonzero(~has_queue)
                er, es, eg = rset[sel], svec[sel], gpu_side[sel]
                unset = np.isnan(e.first_idle[er])
                if unset.any():
                    e.first_idle[er[unset]] = t[er[unset]]
                if self.migrate:
                    spoliated = self._try_spoliate(er, es, eg, t, progress)
                else:
                    spoliated = np.zeros(er.size, dtype=bool)
                failed = ~spoliated
                if failed.any():
                    fr, fs, fg = er[failed], es[failed], eg[failed]
                    dead_gpu[fr[fg]] = True
                    dead_cpu[fr[~fg]] = True
                    any_dead = True
                    # Charge the skipped same-class polls of this pass.
                    same = is_gpu[fr] == fg[:, None]
                    skipped = snapshot[fr] & (cols > fs[:, None]) & same
                    e.stats.picks += int(skipped.sum())
            ptr[rset] = svec + 1


class HeftKernel:
    """Earliest-finish-time HEFT as an array kernel (DAG mode).

    The scalar policy commits each task to a worker *at announce time*
    — per class, the least ``(finish, index)`` over an availability
    heap, then CPUs-before-GPUs across classes — and each worker drains
    its own FIFO queue.  Here availability is a ``(B, W)`` array (the
    per-class argmin in slot space reproduces the heap's index
    tie-break, because slots within a class are index-ordered), and the
    FIFOs are array-encoded linked lists (``q_head``/``q_tail`` per
    slot, ``q_next`` per task).  HEFT never spoliates, so a settle is
    one serving pass plus one all-fail pass, exactly like the scalar
    loop's.
    """

    name = "heft"

    def bind(self, engine) -> None:
        self.e = e = engine
        if e.static:
            raise ValueError(
                "HeftKernel drives the online DAG policy; independent "
                "instances go through repro.schedulers.batch"
            )
        B, n, W = e.B, e.n, e.W
        self.avail = np.zeros((B, W))
        self.q_head = np.full((B, W), -1, dtype=np.int64)
        self.q_tail = np.full((B, W), -1, dtype=np.int64)
        self.q_next = np.full((B, n), -1, dtype=np.int64)

    def on_ready(self, rows: np.ndarray, tasks: np.ndarray, t: np.ndarray) -> None:
        if rows.size == 0:
            return
        # Commitment is sequential within a row (each choice moves the
        # availability the next choice reads), so walk announce
        # positions in lockstep: the k-th new task of every row commits
        # together.
        first_ix, _, counts, _ = _row_groups(rows)
        for k in range(int(counts.max())):
            sel = first_ix[counts > k] + k
            self._commit(rows[sel], tasks[sel], t)

    def _commit(self, rr: np.ndarray, tk: np.ndarray, t: np.ndarray) -> None:
        """Choose a worker for one task per row; rows are unique."""
        e = self.e
        avail = self.avail[rr]  # (K, W)
        now = t[rr][:, None]
        is_gpu = e.is_gpu[rr]
        dur = np.where(is_gpu, e.gpu[rr, tk][:, None], e.cpu[rr, tk][:, None])
        # AvailabilityHeap.best_finish: an idle worker (avail <= now)
        # finishes at now + duration, a busy one at avail + duration —
        # np.where selects the exact operand, so both branches are the
        # scalar's own addition.
        fin = np.where(avail <= now, now, avail) + dur
        ar = np.arange(rr.size)
        fin_cpu = np.where(e.exists[rr] & ~is_gpu, fin, np.inf)
        cpu_slot = fin_cpu.argmin(axis=1)  # first min = smallest index
        best_cpu = fin_cpu[ar, cpu_slot]
        fin_gpu = np.where(is_gpu, fin, np.inf)
        gpu_slot = fin_gpu.argmin(axis=1)
        best_gpu = fin_gpu[ar, gpu_slot]
        # Cross-class key is (finish, CPUs-before-GPUs, index): a GPU
        # wins only on strictly smaller finish.
        choose_gpu = np.isfinite(best_gpu) & (
            ~np.isfinite(best_cpu) | (best_gpu < best_cpu)
        )
        slot = np.where(choose_gpu, gpu_slot, cpu_slot)
        self.avail[rr, slot] = np.where(choose_gpu, best_gpu, best_cpu)
        # FIFO push onto the chosen worker's queue.
        tail = self.q_tail[rr, slot]
        has = tail >= 0
        self.q_next[rr[has], tail[has]] = tk[has]
        hr = ~has
        self.q_head[rr[hr], slot[hr]] = tk[hr]
        self.q_tail[rr, slot] = tk

    def serve_pass(
        self, t: np.ndarray, snapshot: np.ndarray, progress: np.ndarray
    ) -> None:
        e = self.e
        e.stats.picks += int(snapshot.sum())
        served = snapshot & (self.q_head >= 0)
        rows, slots = np.nonzero(served)  # row-major = service order
        if rows.size:
            tk = self.q_head[rows, slots]
            nxt = self.q_next[rows, tk]
            self.q_head[rows, slots] = nxt
            drained = nxt < 0
            self.q_tail[rows[drained], slots[drained]] = -1
            dur = np.where(
                e.is_gpu[rows, slots], e.gpu[rows, tk], e.cpu[rows, tk]
            )
            e._start_multi(rows, slots, tk, t[rows], dur)
            # task_started anchors availability at the true finish.
            self.avail[rows, slots] = np.maximum(
                self.avail[rows, slots], t[rows] + dur
            )
            progress[rows] = True
        failed = (snapshot & ~served).any(axis=1)
        unset = failed & np.isnan(e.first_idle)
        if unset.any():
            e.first_idle[unset] = t[unset]


class DualHPKernel:
    """Online DualHP (dual-queue λ pack) as an array kernel (DAG mode).

    The scalar policy pools announced tasks, and on the first poll after
    an announce re-plans the whole pool: binary-search the smallest
    feasible λ (to ``ONLINE_RTOL``) where *feasible* means every task
    packs onto a worker below ``2λ`` total load — forced tasks first
    (the other resource exceeds λ), then acceleration-ordered optionals
    on GPU with failures overflowing to CPU — and split the pool into a
    CPU and a GPU queue, each drained best-priority-first.  Here the
    pool, arrival stamps and both queues are ``(B, n)`` arrays; the
    search runs in masked lockstep with per-row ``lo``/``hi`` floats
    updated only on that row's own trajectory, so every λ midpoint is
    the scalar's own.  DualHP never spoliates.
    """

    name = "dualhp"

    def bind(self, engine) -> None:
        self.e = e = engine
        if e.static:
            raise ValueError(
                "DualHPKernel drives the online DAG policy; independent "
                "instances go through repro.schedulers.batch"
            )
        B, n = e.B, e.n
        self.pool = np.zeros((B, n), dtype=bool)
        self.arrival = np.zeros((B, n), dtype=np.int64)
        self.counter = np.zeros(B, dtype=np.int64)
        self.dirty = np.zeros(B, dtype=bool)
        # Class queues stored in pop order (best priority first, FIFO
        # within ties); ptr..len is the live window.
        self.cpu_q = np.zeros((B, n), dtype=np.int64)
        self.gpu_q = np.zeros((B, n), dtype=np.int64)
        self.cpu_len = np.zeros(B, dtype=np.int64)
        self.gpu_len = np.zeros(B, dtype=np.int64)
        self.cpu_ptr = np.zeros(B, dtype=np.int64)
        self.gpu_ptr = np.zeros(B, dtype=np.int64)

    def on_ready(self, rows: np.ndarray, tasks: np.ndarray, t: np.ndarray) -> None:
        if rows.size == 0:
            return
        _, urows, counts, offsets = _row_groups(rows)
        self.arrival[rows, tasks] = self.counter[rows] + offsets
        self.pool[rows, tasks] = True
        self.counter[urows] += counts
        self.dirty[urows] = True

    def serve_pass(
        self, t: np.ndarray, snapshot: np.ndarray, progress: np.ndarray
    ) -> None:
        e = self.e
        e.stats.picks += int(snapshot.sum())
        # The scalar policy re-plans inside the first pick() after an
        # announce — i.e. at the head of the first pass that polls it.
        replan = snapshot.any(axis=1) & self.dirty
        if replan.any():
            self._reassign(np.flatnonzero(replan), t)
        # Service order is GPUs first, then CPUs; the j-th idle slot of
        # a class pops the j-th remaining entry of that class's queue.
        for gpu_side in (True, False):
            if gpu_side:
                cls = snapshot & e.is_gpu
                q, qlen, qptr = self.gpu_q, self.gpu_len, self.gpu_ptr
                dur_src = e.gpu
            else:
                cls = snapshot & e.exists & ~e.is_gpu
                q, qlen, qptr = self.cpu_q, self.cpu_len, self.cpu_ptr
                dur_src = e.cpu
            rows, slots = np.nonzero(cls)
            if rows.size == 0:
                continue
            _, _, _, offsets = _row_groups(rows)
            qpos = qptr[rows] + offsets
            ok = qpos < qlen[rows]
            if ok.any():
                sr, ss = rows[ok], slots[ok]
                tk = q[sr, qpos[ok]]
                _, su, sc, _ = _row_groups(sr)
                qptr[su] += sc
                self.pool[sr, tk] = False
                e._start_multi(sr, ss, tk, t[sr], dur_src[sr, tk])
                progress[su] = True
            if not ok.all():
                fr = np.unique(rows[~ok])
                unset = np.isnan(e.first_idle[fr])
                if unset.any():
                    e.first_idle[fr[unset]] = t[fr[unset]]

    # -- re-planning -------------------------------------------------------

    def _reassign(self, rs: np.ndarray, t: np.ndarray) -> None:
        """Rebuild both queues of rows *rs* from their pools at time t."""
        e = self.e
        self.dirty[rs] = False
        w_end = e.w_end[rs]
        running = np.isfinite(w_end)  # nonexistent slots carry +inf too
        rem = np.where(running, np.maximum(w_end - t[rs, None], 0.0), 0.0)
        pool = self.pool[rs]
        has = pool.any(axis=1)
        if not has.all():
            empty = rs[~has]
            self.cpu_len[empty] = 0
            self.cpu_ptr[empty] = 0
            self.gpu_len[empty] = 0
            self.gpu_ptr[empty] = 0
            keep = np.flatnonzero(has)
            rs, rem, pool = rs[keep], rem[keep], pool[keep]
            if rs.size == 0:
                return
        base = rem.max(axis=1)
        # Pool in the scalar's main-loop order: by acceleration factor,
        # then priority, then arrival — padded to (R, K).
        pr, pt = np.nonzero(pool)
        gr = rs[pr]
        acc = e.cpu[gr, pt] / e.gpu[gr, pt]
        order = np.lexsort(
            (self.arrival[gr, pt], -e.prio[gr, pt], -acc, pr)
        )
        pr, pt = pr[order], pt[order]
        _, _, counts, offsets = _row_groups(pr)
        R, K = rs.size, int(counts.max())
        tidx = np.full((R, K), -1, dtype=np.int64)
        tidx[pr, offsets] = pt
        valid = tidx >= 0
        safe = np.where(valid, tidx, 0)
        grows = rs[:, None]
        dc = np.where(valid, e.cpu[grows, safe], 0.0)
        dg = np.where(valid, e.gpu[grows, safe], 0.0)
        # hi = base + max(sum of min-times in pool order, max min-time):
        # the cumsum reproduces the scalar's sequential sum (the zero
        # padding sits at the tail and adds exactly nothing).
        mint = np.minimum(dc, dg)
        total = np.cumsum(mint, axis=1)[:, -1]
        maxmin = np.max(np.where(valid, mint, -np.inf), axis=1)
        hi = base + np.maximum(total, maxmin)
        gsl = e.is_gpu[rs]
        csl = e.exists[rs] & ~e.is_gpu[rs]
        feas = self._try(rem, gsl, csl, dc, dg, valid, hi)
        while not feas.all():  # pragma: no cover - scalar parity path
            bad = np.flatnonzero(~feas)
            hi[bad] *= 2.0
            feas[bad] = self._try(
                rem[bad], gsl[bad], csl[bad], dc[bad], dg[bad],
                valid[bad], hi[bad],
            )
        lo = np.zeros(R)
        while True:
            act = (hi - lo) > ONLINE_RTOL * hi
            if not act.any():
                break
            ai = np.flatnonzero(act)
            mid = 0.5 * (lo[ai] + hi[ai])
            ok = self._try(
                rem[ai], gsl[ai], csl[ai], dc[ai], dg[ai], valid[ai], mid
            )
            lo[ai[~ok]] = mid[~ok]
            hi[ai[ok]] = mid[ok]
        # The accepted assignment is always _try(hi)'s — recompute it
        # once at the converged λ and materialize the queues.
        _, gpu_assign = self._try(
            rem, gsl, csl, dc, dg, valid, hi, want_assignment=True
        )
        self._build_queues(rs, tidx, valid, gpu_assign)

    def _try(
        self,
        rem: np.ndarray,
        gslots: np.ndarray,
        cslots: np.ndarray,
        dc: np.ndarray,
        dg: np.ndarray,
        valid: np.ndarray,
        lam: np.ndarray,
        *,
        want_assignment: bool = False,
    ):
        """One λ feasibility pack over (R, K) pools; loads start at rem.

        Mirrors ``DualHPPolicy._try``: tasks in acceleration order, a
        task whose other-resource time exceeds λ is forced to its fast
        class (both exceeding → infeasible), optionals greedily pack on
        the least-loaded GPU under the ``2λ`` limit and overflow to the
        CPU pass afterwards.  Rows that fail any forced or overflow
        pack go infeasible and stop evolving.
        """
        R, K = valid.shape
        limit = 2.0 * lam
        loads = rem.copy()
        feasible = np.ones(R, dtype=bool)
        overflow = np.zeros((R, K), dtype=bool)
        gpu_assign = np.zeros((R, K), dtype=bool)
        for k in range(K):
            act = feasible & valid[:, k]
            if not act.any():
                continue
            ai = np.flatnonzero(act)
            dck, dgk = dc[ai, k], dg[ai, k]
            lamk = lam[ai]
            fg = dck > lamk
            fc = dgk > lamk
            both = fg & fc
            if both.any():
                feasible[ai[both]] = False
                keep = ~both
                ai, dck, dgk, fg, fc = (
                    ai[keep], dck[keep], dgk[keep], fg[keep], fc[keep]
                )
                if ai.size == 0:
                    continue
            try_gpu = ~fc  # forced-CPU tasks never try the GPU side
            gi = ai[try_gpu]
            ok_gpu = np.zeros(ai.size, dtype=bool)
            if gi.size:
                lg = np.where(gslots[gi], loads[gi], np.inf)
                slot = lg.argmin(axis=1)  # (load, index) heap order
                can = lg[np.arange(gi.size), slot] + dgk[try_gpu] <= limit[gi]
                ok_gpu[try_gpu] = can
                wi = gi[can]
                loads[wi, slot[can]] += dgk[try_gpu][can]
                gpu_assign[wi, k] = True
            failed_gpu = try_gpu & ~ok_gpu
            feasible[ai[failed_gpu & fg]] = False
            overflow[ai[failed_gpu & ~fg], k] = True
            ci = ai[fc]
            if ci.size:
                lc = np.where(cslots[ci], loads[ci], np.inf)
                slot = lc.argmin(axis=1)
                can = lc[np.arange(ci.size), slot] + dck[fc] <= limit[ci]
                wi = ci[can]
                loads[wi, slot[can]] += dck[fc][can]
                feasible[ci[~can]] = False
        # Optionals that missed the GPU cut pack onto CPUs, same order.
        for k in range(K):
            act = feasible & overflow[:, k]
            if not act.any():
                continue
            ai = np.flatnonzero(act)
            dck = dc[ai, k]
            lc = np.where(cslots[ai], loads[ai], np.inf)
            slot = lc.argmin(axis=1)
            can = lc[np.arange(ai.size), slot] + dck <= limit[ai]
            wi = ai[can]
            loads[wi, slot[can]] += dck[can]
            feasible[ai[~can]] = False
        if want_assignment:
            return feasible, gpu_assign
        return feasible

    def _build_queues(
        self,
        rs: np.ndarray,
        tidx: np.ndarray,
        valid: np.ndarray,
        gpu_assign: np.ndarray,
    ) -> None:
        """Split the pool into class queues, stored in pop order."""
        e = self.e
        mr, mk = np.nonzero(valid)
        tk = tidx[mr, mk]
        grows = rs[mr]
        pri = e.prio[grows, tk]
        arr = self.arrival[grows, tk]
        gq = gpu_assign[mr, mk]
        for side in (True, False):
            q, qlen, qptr = (
                (self.gpu_q, self.gpu_len, self.gpu_ptr)
                if side
                else (self.cpu_q, self.cpu_len, self.cpu_ptr)
            )
            qptr[rs] = 0
            qlen[rs] = 0
            sel = gq if side else ~gq
            rr, tt = mr[sel], tk[sel]
            if rr.size == 0:
                continue
            # Scalar pop order: best (priority, -arrival) first.
            order = np.lexsort((arr[sel], -pri[sel], rr))
            rr, tt = rr[order], tt[order]
            _, urows, counts, offsets = _row_groups(rr)
            q[rs[rr], offsets] = tt
            qlen[rs[urows]] = counts


#: DAG-mode kernel factories by campaign algorithm prefix.
DAG_KERNELS = {
    "heteroprio": HeteroPrioKernel,
    "heft": HeftKernel,
    "dualhp": DualHPKernel,
}


def make_dag_kernel(
    algorithm: str, *, spoliation: bool = True, victim_rule: str = "priority"
):
    """Instantiate the DAG-mode kernel for a campaign algorithm prefix.

    ``spoliation``/``victim_rule`` only parameterize HeteroPrio — the
    scalar HEFT and DualHP policies never spoliate, so their kernels
    take no knobs.
    """
    if algorithm == "heteroprio":
        return HeteroPrioKernel(migrate=spoliation, victim_rule=victim_rule)
    try:
        return DAG_KERNELS[algorithm]()
    except KeyError:
        raise ValueError(
            f"no batch kernel for algorithm {algorithm!r}; expected one of "
            f"{sorted(DAG_KERNELS)}"
        ) from None
