# repro-lint: disable=wall-clock -- SimStats.wall_s is bench telemetry
# only; no simulated time or cached metric is derived from it.
"""Lockstep batch execution of the online scheduling policies.

One interpreted Python event loop per instance is the binding constraint
on campaign throughput (ROADMAP item 2).  This module advances a whole
*batch* of instances — rows of ``(seed, platform, policy)`` points that
share one :class:`~repro.dag.compiled.CompiledGraph` structure or one
independent-task recipe — in lockstep over numpy arrays:

* every piece of per-instance simulator state (worker end times, queue
  positions, in-degrees) lives in a ``(B, ...)`` array with the batch
  axis first;
* each main-loop iteration advances *every* row to its own next event
  window and retires all completions across the batch with a handful of
  vectorized operations;
* per-row divergence — spoliation aborts, stale completion events, rows
  whose queue runs dry — is handled by masked sub-stepping: rows that
  take a given branch are selected with boolean masks and updated
  together, rows that don't are untouched.

The engine owns everything policy-independent — worker slots, the
dependency CSR, completion windows, placement records — and delegates
each policy decision to a *kernel* object from
:mod:`repro.simulator.batch_policies` (HeteroPrio, HEFT and DualHP)
that expresses the scalar policy's picks as masked vector operations.

Semantics are **event-for-event identical** to the scalar loops
(:mod:`repro.simulator.runtime` for DAGs,
:func:`repro.core.heteroprio.heteroprio_schedule` for independent
tasks), which remain the authoritative differential references — see
``tests/test_batch_differential.py``.  Bit-identity matters beyond
testing hygiene: campaign results are content-addressed under
``CODE_VERSION``, so the batch engine must reproduce the scalar floats
exactly for the cache to stay valid.  The two properties that make this
achievable:

* both scalar loops process completions in ``(end, seq)`` heap order
  and anchor each completion window at the first popped event; the
  batch engine reproduces the exact pop order with a lexsort and the
  exact anchor with per-row *phantom* events (see below);
* every arithmetic operation on times (``end = now + duration``, the
  spoliation improvement test) is the same IEEE-754 float64 operation
  in numpy as in CPython, applied to the same operands in the same
  association, so results match bit-for-bit.

**Phantom events.**  The scalar DAG loop pops its event heap *before*
checking staleness, so a spoliated (stale) completion still anchors the
next window even though it retires nothing.  The batch engine keeps a
tiny per-row heap of these stale times and anchors each row's window at
``min(live completions, phantom events)`` — without it, batch and
scalar windows drift apart after the first spoliation.  The scalar
*independent* loop skips stale events at the pop instead, so the
independent wrapper runs with phantoms disabled.

Ready-queue layout is the kernel's business: HeteroPrio keeps the
static affinity order (two-ended window / membership mask), HEFT keeps
per-worker FIFOs as array-encoded linked lists, DualHP keeps a task
pool plus two pop-ordered class queues rebuilt on demand — see
:mod:`repro.simulator.batch_policies`.

Placements are recorded append-only into flat preallocated arrays in
global chronological order; because each row's records land in its own
chronological order too, one *stable* argsort by row recovers the scalar
loop's exact per-row placement-append order.  The sort is lazy — batch
consumers that only need makespans (order-free maxima) never pay for it.
"""

from __future__ import annotations

import heapq
import time as _time
from typing import Sequence

import numpy as np

from repro.core.heteroprio import SpoliationEvent
from repro.core.platform import Platform, ResourceKind, Worker
from repro.core.schedule import Schedule, TIME_EPS
from repro.core.task import Task
from repro.dag.compiled import CompiledGraph, _ragged_gather
from repro.simulator.batch_policies import (
    HeteroPrioKernel,
    _row_groups,
    make_dag_kernel,
)
from repro.simulator.runtime import SimStats

__all__ = ["BatchResult", "batch_heteroprio_schedule", "batch_simulate_dag"]


def _service_workers(platform: Platform) -> tuple[Worker, ...]:
    """Workers in service order: GPUs first by index, then CPUs by index."""
    return tuple(
        sorted(
            platform.workers(),
            key=lambda w: (0 if w.kind is ResourceKind.GPU else 1, w.index),
        )
    )


class _Records:
    """Append-only struct-of-arrays placement log for the whole batch.

    Rows are appended in global chronological order; aborted and
    completed placements share the log so a stable per-row selection
    reproduces the scalar append order exactly.
    """

    def __init__(self, capacity: int):
        capacity = max(capacity, 16)
        self.rows = np.empty(capacity, dtype=np.int64)
        self.slots = np.empty(capacity, dtype=np.int64)
        self.tasks = np.empty(capacity, dtype=np.int64)
        self.starts = np.empty(capacity)
        self.ends = np.empty(capacity)
        self.flags = np.empty(capacity, dtype=bool)
        self.size = 0

    def _grow(self, needed: int) -> None:
        capacity = max(needed, self.rows.size + (self.rows.size >> 1))
        for name in ("rows", "slots", "tasks", "starts", "ends", "flags"):
            old = getattr(self, name)
            new = np.empty(capacity, dtype=old.dtype)
            new[: self.size] = old[: self.size]
            setattr(self, name, new)

    def append(
        self,
        rows: np.ndarray,
        slots: np.ndarray,
        tasks: np.ndarray,
        starts: np.ndarray,
        ends: np.ndarray,
        aborted: bool,
    ) -> None:
        lo = self.size
        hi = lo + rows.size
        if hi > self.rows.size:
            self._grow(hi)
        self.rows[lo:hi] = rows
        self.slots[lo:hi] = slots
        self.tasks[lo:hi] = tasks
        self.starts[lo:hi] = starts
        self.ends[lo:hi] = ends
        self.flags[lo:hi] = aborted
        self.size = hi


class BatchResult:
    """Outcome of one lockstep batch run.

    Scalar-valued summaries (``makespans``, ``t_first_idle``,
    ``abort_counts``, aggregate ``stats``) are available immediately;
    :meth:`schedule` materializes one row's :class:`Schedule` on demand,
    in the scalar loop's exact placement-append order, with values
    converted to Python floats so downstream JSON caching never sees
    ``np.float64``.
    """

    def __init__(
        self,
        *,
        platforms: tuple[Platform, ...],
        workers: tuple[tuple[Worker, ...], ...],
        n_tasks: int,
        makespans: np.ndarray,
        t_first_idle: np.ndarray,
        abort_counts: np.ndarray,
        stats: SimStats,
        records: _Records,
        sp_chunks: dict[str, list[np.ndarray]],
        default_tasks: tuple[Task, ...] | None,
    ):
        self.platforms = platforms
        self.workers = workers
        self.n_tasks = n_tasks
        #: (B,) float64 makespans, completed placements only.
        self.makespans = makespans
        #: (B,) float64 first instants any worker went idle.
        self.t_first_idle = t_first_idle
        #: (B,) int64 spoliation-abort counts.
        self.abort_counts = abort_counts
        #: Aggregate hot-loop counters (scalar conventions, summed).
        self.stats = stats
        self._records = records
        self._sp_chunks = sp_chunks
        self._default_tasks = default_tasks
        self._offsets: np.ndarray | None = None

    def __len__(self) -> int:
        return len(self.platforms)

    def _sorted_records(self) -> tuple[_Records, np.ndarray]:
        """Records grouped by row (stable, preserving append order)."""
        if self._offsets is None:
            rec = self._records
            n = rec.size
            order = np.argsort(rec.rows[:n], kind="stable")
            grouped = _Records(n)
            grouped.rows = rec.rows[:n][order]
            grouped.slots = rec.slots[:n][order]
            grouped.tasks = rec.tasks[:n][order]
            grouped.starts = rec.starts[:n][order]
            grouped.ends = rec.ends[:n][order]
            grouped.flags = rec.flags[:n][order]
            grouped.size = n
            self._records = grouped
            self._offsets = np.searchsorted(
                grouped.rows, np.arange(len(self.platforms) + 1)
            )
        return self._records, self._offsets

    def _task_objects(self, tasks: Sequence[Task] | None) -> Sequence[Task]:
        objs = self._default_tasks if tasks is None else tasks
        if objs is None:
            raise ValueError(
                "this batch recorded no shared Task objects; pass tasks=..."
            )
        return objs

    def schedule(self, i: int, tasks: Sequence[Task] | None = None) -> Schedule:
        """Materialize row *i* as a :class:`Schedule`.

        ``tasks`` maps task indices to :class:`Task` objects (defaults
        to the tasks the batch was built from, when shared).  Placement
        order is the scalar loop's append order, so list-order-sensitive
        consumers (metric sums, ``Schedule.tasks()``) see identical
        output.
        """
        task_objs = self._task_objects(tasks)
        rec, offsets = self._sorted_records()
        lo, hi = int(offsets[i]), int(offsets[i + 1])
        row_workers = self.workers[i]
        schedule = Schedule(self.platforms[i])
        add = schedule.add
        for t, s, start, end, aborted in zip(
            rec.tasks[lo:hi].tolist(),
            rec.slots[lo:hi].tolist(),
            rec.starts[lo:hi].tolist(),
            rec.ends[lo:hi].tolist(),
            rec.flags[lo:hi].tolist(),
        ):
            add(task_objs[t], row_workers[s], start, end=end, aborted=aborted)
        return schedule

    def spoliations(
        self, i: int, tasks: Sequence[Task] | None = None
    ) -> list[SpoliationEvent]:
        """Row *i*'s spoliation events, in chronological order."""
        task_objs = self._task_objects(tasks)
        chunks = self._sp_chunks
        if not chunks["rows"]:
            return []
        rows = np.concatenate(chunks["rows"])
        keep = np.flatnonzero(rows == i)
        if keep.size == 0:
            return []
        cat = {k: np.concatenate(v)[keep] for k, v in chunks.items()}
        row_workers = self.workers[i]
        return [
            SpoliationEvent(
                task=task_objs[int(t)],
                victim_worker=row_workers[int(v)],
                new_worker=row_workers[int(w)],
                abort_time=float(at),
                old_completion=float(old),
                new_completion=float(new),
            )
            for t, v, w, at, old, new in zip(
                cat["tasks"], cat["vslots"], cat["nslots"],
                cat["times"], cat["olds"], cat["news"],
            )
        ]


class _LockstepEngine:
    """The shared lockstep core; see the module docstring for the model."""

    def __init__(
        self,
        *,
        cpu: np.ndarray,
        gpu: np.ndarray,
        priority: np.ndarray,
        platforms: Sequence[Platform],
        kernel,
        succ_indptr: np.ndarray | None = None,
        succ_indices: np.ndarray | None = None,
        indegree: np.ndarray | None = None,
        anchor_stale: bool = False,
    ):
        B, n = cpu.shape
        self.B, self.n = B, n
        self.cpu = np.ascontiguousarray(cpu, dtype=np.float64)
        self.gpu = np.ascontiguousarray(gpu, dtype=np.float64)
        self.prio = np.ascontiguousarray(priority, dtype=np.float64)
        self.platforms = tuple(platforms)
        self.worker_tuples = tuple(_service_workers(p) for p in self.platforms)
        W = max(len(ws) for ws in self.worker_tuples)
        self.W = W
        self.exists = np.zeros((B, W), dtype=bool)
        self.is_gpu = np.zeros((B, W), dtype=bool)
        for b, ws in enumerate(self.worker_tuples):
            self.exists[b, : len(ws)] = True
            for s, w in enumerate(ws):
                if w.kind is ResourceKind.GPU:
                    self.is_gpu[b, s] = True
        self.anchor_stale = anchor_stale

        self.static = succ_indptr is None
        if not self.static:
            self.succ_indptr = succ_indptr
            self.succ_indices = succ_indices
            self.indeg = np.ascontiguousarray(
                np.broadcast_to(indegree, (B, n)), dtype=np.int64
            )
            self.indeg_flat = self.indeg.reshape(-1)

        # Worker slot state; an idle slot has w_end == +inf.
        self.w_task = np.full((B, W), -1, dtype=np.int64)
        self.w_end = np.full((B, W), np.inf)
        self.w_start = np.zeros((B, W))
        self.w_seq = np.zeros((B, W), dtype=np.int64)
        self.seq_counter = np.zeros(B, dtype=np.int64)  # heap tiebreak order
        self.remaining = np.full(B, n, dtype=np.int64)
        self.first_idle = np.full(B, np.nan)
        #: per-row heaps of stale completion times (DAG anchor semantics)
        self.phantoms: dict[int, list[float]] = {}
        self.stats = SimStats()
        self._cols = np.arange(W, dtype=np.int64)
        self.records = _Records(B * n + B)
        self._sp_chunks: dict[str, list[np.ndarray]] = {
            "rows": [], "tasks": [], "vslots": [], "nslots": [],
            "times": [], "olds": [], "news": [],
        }
        #: reusable (B, W) scratch for the per-pass idle snapshot
        self._snap = np.empty((B, W), dtype=bool)

        self.kernel = kernel
        kernel.bind(self)
        if not self.static:
            # Sources are announced at t=0 like the scalar loop's first
            # announce — in (-priority, uid) order per row.
            rr, tt = np.nonzero(self.indeg == 0)
            self._announce(rr, tt, np.zeros(B))

    # -- primitive steps ---------------------------------------------------

    def _start(
        self,
        rows: np.ndarray,
        slots: np.ndarray,
        tasks: np.ndarray,
        now: np.ndarray,
        durations: np.ndarray,
    ) -> None:
        """Begin executions; rows are unique within one call."""
        self.w_task[rows, slots] = tasks
        self.w_start[rows, slots] = now
        self.w_end[rows, slots] = now + durations
        self.w_seq[rows, slots] = self.seq_counter[rows]
        self.seq_counter[rows] += 1

    def _start_multi(
        self,
        rows: np.ndarray,
        slots: np.ndarray,
        tasks: np.ndarray,
        now: np.ndarray,
        durations: np.ndarray,
    ) -> None:
        """Begin executions; rows may repeat, sorted, (row, slot) unique.

        Callers present each row's starts in service order (slots
        ascending), so stamping sequence numbers by position within the
        row group reproduces the scalar loop's per-start heap tiebreak
        counter exactly.
        """
        if rows.size == 0:
            return
        _, urows, counts, offsets = _row_groups(rows)
        self.w_task[rows, slots] = tasks
        self.w_start[rows, slots] = now
        self.w_end[rows, slots] = now + durations
        self.w_seq[rows, slots] = self.seq_counter[rows] + offsets
        self.seq_counter[urows] += counts

    def _announce(self, rows: np.ndarray, tasks: np.ndarray, t: np.ndarray) -> None:
        """Hand newly ready tasks to the kernel in scalar announce order.

        The scalar loop announces ``sorted(ready, key=(-priority,
        uid))``; task uids ascend with task index in every batch layout,
        so the index is the uid tiebreak.
        """
        if rows.size == 0:
            return
        order = np.lexsort((tasks, -self.prio[rows, tasks], rows))
        self.kernel.on_ready(rows[order], tasks[order], t)

    # -- settle ------------------------------------------------------------

    def _settle(self, t: np.ndarray, rows_mask: np.ndarray) -> None:
        """Serve idle workers until no row makes progress.

        Mirrors the scalar settle structure: each *pass* snapshots a
        row's idle slots and hands them to the kernel, which serves
        each exactly once in service order (GPUs first); slots freed
        mid-pass (spoliation) wait for the next pass.  Rows that
        started nothing drop out; the loop ends when no row progresses
        — exactly the scalar ``while progress`` settle.
        """
        active = rows_mask
        snapshot = self._snap
        serve = self.kernel.serve_pass
        while active.any():
            np.isfinite(self.w_end, out=snapshot)
            np.logical_not(snapshot, out=snapshot)
            snapshot &= self.exists
            snapshot &= active[:, None]
            progress = np.zeros(self.B, dtype=bool)
            serve(t, snapshot, progress)
            active = progress

    # -- main loop ---------------------------------------------------------

    def run(self) -> None:
        started = _time.perf_counter()
        B, n = self.B, self.n
        stats = self.stats
        t = np.zeros(B)
        if n > 0:
            self._settle(t, self.remaining > 0)
        while True:
            act = self.remaining > 0
            if not act.any():
                break
            # Each row's window anchors at its earliest event — a live
            # completion or (DAG mode) a phantom stale event.
            t = self.w_end.min(axis=1)
            if self.phantoms:
                for b in list(self.phantoms):
                    if act[b] and self.phantoms[b][0] < t[b]:
                        t[b] = self.phantoms[b][0]
            stalled = act & ~np.isfinite(t)
            if stalled.any():
                raise RuntimeError(
                    f"policy stalled in batch run: {int(stalled.sum())} "
                    "row(s) left tasks unfinished with no executions in flight"
                )
            window = t + TIME_EPS
            if self.phantoms:
                for b in list(self.phantoms):
                    if not act[b]:
                        continue
                    heap = self.phantoms[b]
                    dropped = 0
                    while heap and heap[0] <= window[b]:
                        heapq.heappop(heap)
                        dropped += 1
                    if dropped:
                        stats.events += dropped
                        stats.stale_events += dropped
                    if not heap:
                        del self.phantoms[b]
            done = act[:, None] & (self.w_end <= window[:, None])
            rows, slots = np.nonzero(done)
            if rows.size == 0:
                continue  # a window anchored by phantoms alone
            ends = self.w_end[rows, slots]
            seqs = self.w_seq[rows, slots]
            # Per-row (end, seq) order — exactly the scalar heap-pop order.
            pop_order = np.lexsort((seqs, ends, rows))
            rows, slots = rows[pop_order], slots[pop_order]
            ends = ends[pop_order]
            tasks = self.w_task[rows, slots]
            starts = self.w_start[rows, slots]
            # Group boundaries: rows is sorted, groups are contiguous.
            change = np.empty(rows.size, dtype=bool)
            change[0] = True
            np.not_equal(rows[1:], rows[:-1], out=change[1:])
            first_ix = np.flatnonzero(change)
            urows = rows[first_ix]
            counts = np.diff(np.append(first_ix, rows.size))
            self.records.append(rows, slots, tasks, starts, ends, False)
            stats.events += rows.size
            stats.tasks += rows.size
            self.w_end[rows, slots] = np.inf
            self.w_task[rows, slots] = -1
            self.remaining[urows] -= counts
            if not self.static:
                s0 = self.succ_indptr[tasks]
                cnt = self.succ_indptr[tasks + 1] - s0
                if cnt.sum():
                    succ_t = self.succ_indices[_ragged_gather(s0, cnt)]
                    succ_r = np.repeat(rows, cnt)
                    flat = succ_r * n + succ_t
                    np.subtract.at(self.indeg_flat, flat, 1)
                    # A successor reaching indegree 0 matches for every
                    # one of its just-resolved edges, so dedupe only the
                    # (small) ready candidate set, not all of `flat`.
                    ready = np.unique(flat[self.indeg_flat[flat] == 0])
                    if ready.size:
                        ready_r = ready // n
                        ready_t = ready - ready_r * n
                        self._announce(ready_r, ready_t, t)
            settle_rows = np.zeros(B, dtype=bool)
            settle_rows[urows] = True
            settle_rows &= self.remaining > 0
            if settle_rows.any():
                self._settle(t, settle_rows)
        stats.events = int(stats.events)
        stats.tasks = int(stats.tasks)
        stats.picks = int(stats.picks)
        stats.wall_s = _time.perf_counter() - started

    # -- result ------------------------------------------------------------

    def finalize(self, default_tasks: tuple[Task, ...] | None) -> BatchResult:
        B, W = self.B, self.W
        rec = self.records
        size = rec.size
        rows = rec.rows[:size]
        ends = rec.ends[:size]
        flags = rec.flags[:size]

        makespans = np.zeros(B)
        completed = ~flags
        np.maximum.at(makespans, rows[completed], ends[completed])

        first_idle = self.first_idle.copy()
        need = np.isnan(first_idle)
        if need.any():
            # Scalar fallback: min over all workers of their last busy
            # instant (0.0 for a never-used worker), aborted included.
            worker_max = np.zeros((B, W))
            np.maximum.at(worker_max, (rows, rec.slots[:size]), ends)
            fallback = np.where(self.exists, worker_max, np.inf).min(axis=1)
            first_idle[need] = fallback[need]

        abort_counts = np.bincount(rows[flags], minlength=B).astype(np.int64)

        return BatchResult(
            platforms=self.platforms,
            workers=self.worker_tuples,
            n_tasks=self.n,
            makespans=makespans,
            t_first_idle=first_idle,
            abort_counts=abort_counts,
            stats=self.stats,
            records=rec,
            sp_chunks=self._sp_chunks,
            default_tasks=default_tasks,
        )


def _as_platforms(
    platforms: Platform | Sequence[Platform], batch: int
) -> tuple[Platform, ...]:
    if isinstance(platforms, Platform):
        return (platforms,) * batch
    out = tuple(platforms)
    if len(out) != batch:
        raise ValueError(f"expected {batch} platforms, got {len(out)}")
    return out


def batch_heteroprio_schedule(
    cpu_times: np.ndarray,
    gpu_times: np.ndarray,
    platforms: Platform | Sequence[Platform],
    *,
    priorities: np.ndarray | None = None,
    spoliation: bool = True,
    migration: str = "spoliation",
) -> BatchResult:
    """Run HeteroPrio on a ``(B, n)`` batch of independent-task instances.

    Bit-identical to per-row
    :func:`repro.core.heteroprio.heteroprio_schedule`
    (``compute_ns=False``) with the same migration mode.  The
    ``"preemption"`` migration mode keeps partial progress per victim
    and is inherently sequential — callers fall back to the scalar loop.
    """
    cpu = np.ascontiguousarray(cpu_times, dtype=np.float64)
    gpu = np.ascontiguousarray(gpu_times, dtype=np.float64)
    if cpu.ndim != 2 or cpu.shape != gpu.shape:
        raise ValueError("cpu_times/gpu_times must be matching (B, n) arrays")
    mode = migration if spoliation else "none"
    if mode == "preemption":
        raise NotImplementedError(
            "preemption migration is sequential per instance; use the scalar loop"
        )
    B, _ = cpu.shape
    prio = (
        np.zeros_like(cpu)
        if priorities is None
        else np.ascontiguousarray(np.broadcast_to(priorities, cpu.shape))
    )
    engine = _LockstepEngine(
        cpu=cpu,
        gpu=gpu,
        priority=prio,
        platforms=_as_platforms(platforms, B),
        kernel=HeteroPrioKernel(
            migrate=mode == "spoliation", victim_rule="completion"
        ),
        anchor_stale=False,
    )
    engine.run()
    # Rows are distinct instances with distinct Task objects; callers
    # pass their own task list to BatchResult.schedule(i, tasks=...).
    return engine.finalize(None)


def batch_simulate_dag(
    graph: CompiledGraph,
    platforms: Platform | Sequence[Platform],
    priorities: np.ndarray,
    *,
    algorithm: str = "heteroprio",
    cpu_times: np.ndarray | None = None,
    gpu_times: np.ndarray | None = None,
    spoliation: bool = True,
    victim_rule: str = "priority",
) -> BatchResult:
    """Run one online DAG policy on a batch sharing one graph structure.

    ``algorithm`` picks the policy kernel — ``"heteroprio"`` (default),
    ``"heft"`` or ``"dualhp"`` (see
    :data:`repro.simulator.batch_policies.DAG_KERNELS`).
    ``priorities`` is ``(B, n)`` (one priority vector per row — e.g. one
    ranking scheme per row); ``cpu_times``/``gpu_times`` default to the
    graph's own durations broadcast across the batch, or may be
    ``(B, n)`` per-row samples (noise sweeps over one structure).
    Bit-identical to :func:`repro.simulator.simulate` with the matching
    :func:`repro.schedulers.online.make_policy` policy per row;
    ``spoliation``/``victim_rule`` parameterize HeteroPrio only (the
    scalar HEFT and DualHP policies never spoliate).
    """
    prio = np.atleast_2d(np.asarray(priorities, dtype=np.float64))
    B, n = prio.shape
    if n != len(graph):
        raise ValueError("priorities second axis must match graph size")
    cpu = graph.cpu_times if cpu_times is None else np.asarray(cpu_times)
    gpu = graph.gpu_times if gpu_times is None else np.asarray(gpu_times)
    cpu = np.ascontiguousarray(np.broadcast_to(cpu, (B, n)), dtype=np.float64)
    gpu = np.ascontiguousarray(np.broadcast_to(gpu, (B, n)), dtype=np.float64)
    engine = _LockstepEngine(
        cpu=cpu,
        gpu=gpu,
        priority=prio,
        platforms=_as_platforms(platforms, B),
        kernel=make_dag_kernel(
            algorithm, spoliation=spoliation, victim_rule=victim_rule
        ),
        succ_indptr=graph.succ_indptr,
        succ_indices=graph.succ_indices,
        indegree=np.diff(graph.pred_indptr),
        anchor_stale=True,
    )
    engine.run()
    default = graph.tasks if cpu_times is None and gpu_times is None else None
    return engine.finalize(default)
