# repro-lint: disable=wall-clock -- SimStats.wall_s is bench telemetry
# only; no simulated time or cached metric is derived from it.
"""Lockstep batch execution of the HeteroPrio simulation kernel.

One interpreted Python event loop per instance is the binding constraint
on campaign throughput (ROADMAP item 2).  This module advances a whole
*batch* of instances — rows of ``(seed, platform, policy)`` points that
share one :class:`~repro.dag.compiled.CompiledGraph` structure or one
independent-task recipe — in lockstep over numpy arrays:

* every piece of per-instance simulator state (worker end times, queue
  positions, in-degrees) lives in a ``(B, ...)`` array with the batch
  axis first;
* each main-loop iteration advances *every* row to its own next event
  window and retires all completions across the batch with a handful of
  vectorized operations;
* per-row divergence — spoliation aborts, stale completion events, rows
  whose queue runs dry — is handled by masked sub-stepping: rows that
  take a given branch are selected with boolean masks and updated
  together, rows that don't are untouched.

Semantics are **event-for-event identical** to the scalar loops
(:mod:`repro.simulator.runtime` for DAGs,
:func:`repro.core.heteroprio.heteroprio_schedule` for independent
tasks), which remain the authoritative differential references — see
``tests/test_batch_differential.py``.  Bit-identity matters beyond
testing hygiene: campaign results are content-addressed under
``CODE_VERSION``, so the batch engine must reproduce the scalar floats
exactly for the cache to stay valid.  The two properties that make this
achievable:

* both scalar loops process completions in ``(end, seq)`` heap order
  and anchor each completion window at the first popped event; the
  batch engine reproduces the exact pop order with a lexsort and the
  exact anchor with per-row *phantom* events (see below);
* every arithmetic operation on times (``end = now + duration``, the
  spoliation improvement test) is the same IEEE-754 float64 operation
  in numpy as in CPython, applied to the same operands in the same
  association, so results match bit-for-bit.

**Phantom events.**  The scalar DAG loop pops its event heap *before*
checking staleness, so a spoliated (stale) completion still anchors the
next window even though it retires nothing.  The batch engine keeps a
tiny per-row heap of these stale times and anchors each row's window at
``min(live completions, phantom events)`` — without it, batch and
scalar windows drift apart after the first spoliation.  The scalar
*independent* loop skips stale events at the pop instead, so the
independent wrapper runs with phantoms disabled.

Queues are the static HeteroPrio affinity order
(:func:`repro.core.heteroprio.batch_queue_order`): independent rows pop
from the two ends of a fixed window (O(1) pointers — tasks are never
re-inserted), DAG rows keep a boolean membership mask in sorted-position
space (ready tasks arrive over time) and locate the ends with masked
argmax.

Placements are recorded append-only into flat preallocated arrays in
global chronological order; because each row's records land in its own
chronological order too, one *stable* argsort by row recovers the scalar
loop's exact per-row placement-append order.  The sort is lazy — batch
consumers that only need makespans (order-free maxima) never pay for it.
"""

from __future__ import annotations

import heapq
import time as _time
from typing import Sequence

import numpy as np

from repro.core.heteroprio import SpoliationEvent, batch_queue_order
from repro.core.platform import Platform, ResourceKind, Worker
from repro.core.schedule import Schedule, TIME_EPS
from repro.core.task import Task
from repro.dag.compiled import CompiledGraph, _ragged_gather
from repro.simulator.runtime import SimStats

__all__ = ["BatchResult", "batch_heteroprio_schedule", "batch_simulate_dag"]


def _service_workers(platform: Platform) -> tuple[Worker, ...]:
    """Workers in service order: GPUs first by index, then CPUs by index."""
    return tuple(
        sorted(
            platform.workers(),
            key=lambda w: (0 if w.kind is ResourceKind.GPU else 1, w.index),
        )
    )


class _Records:
    """Append-only struct-of-arrays placement log for the whole batch.

    Rows are appended in global chronological order; aborted and
    completed placements share the log so a stable per-row selection
    reproduces the scalar append order exactly.
    """

    def __init__(self, capacity: int):
        capacity = max(capacity, 16)
        self.rows = np.empty(capacity, dtype=np.int64)
        self.slots = np.empty(capacity, dtype=np.int64)
        self.tasks = np.empty(capacity, dtype=np.int64)
        self.starts = np.empty(capacity)
        self.ends = np.empty(capacity)
        self.flags = np.empty(capacity, dtype=bool)
        self.size = 0

    def _grow(self, needed: int) -> None:
        capacity = max(needed, self.rows.size + (self.rows.size >> 1))
        for name in ("rows", "slots", "tasks", "starts", "ends", "flags"):
            old = getattr(self, name)
            new = np.empty(capacity, dtype=old.dtype)
            new[: self.size] = old[: self.size]
            setattr(self, name, new)

    def append(
        self,
        rows: np.ndarray,
        slots: np.ndarray,
        tasks: np.ndarray,
        starts: np.ndarray,
        ends: np.ndarray,
        aborted: bool,
    ) -> None:
        lo = self.size
        hi = lo + rows.size
        if hi > self.rows.size:
            self._grow(hi)
        self.rows[lo:hi] = rows
        self.slots[lo:hi] = slots
        self.tasks[lo:hi] = tasks
        self.starts[lo:hi] = starts
        self.ends[lo:hi] = ends
        self.flags[lo:hi] = aborted
        self.size = hi


class BatchResult:
    """Outcome of one lockstep batch run.

    Scalar-valued summaries (``makespans``, ``t_first_idle``,
    ``abort_counts``, aggregate ``stats``) are available immediately;
    :meth:`schedule` materializes one row's :class:`Schedule` on demand,
    in the scalar loop's exact placement-append order, with values
    converted to Python floats so downstream JSON caching never sees
    ``np.float64``.
    """

    def __init__(
        self,
        *,
        platforms: tuple[Platform, ...],
        workers: tuple[tuple[Worker, ...], ...],
        n_tasks: int,
        makespans: np.ndarray,
        t_first_idle: np.ndarray,
        abort_counts: np.ndarray,
        stats: SimStats,
        records: _Records,
        sp_chunks: dict[str, list[np.ndarray]],
        default_tasks: tuple[Task, ...] | None,
    ):
        self.platforms = platforms
        self.workers = workers
        self.n_tasks = n_tasks
        #: (B,) float64 makespans, completed placements only.
        self.makespans = makespans
        #: (B,) float64 first instants any worker went idle.
        self.t_first_idle = t_first_idle
        #: (B,) int64 spoliation-abort counts.
        self.abort_counts = abort_counts
        #: Aggregate hot-loop counters (scalar conventions, summed).
        self.stats = stats
        self._records = records
        self._sp_chunks = sp_chunks
        self._default_tasks = default_tasks
        self._offsets: np.ndarray | None = None

    def __len__(self) -> int:
        return len(self.platforms)

    def _sorted_records(self) -> tuple[_Records, np.ndarray]:
        """Records grouped by row (stable, preserving append order)."""
        if self._offsets is None:
            rec = self._records
            n = rec.size
            order = np.argsort(rec.rows[:n], kind="stable")
            grouped = _Records(n)
            grouped.rows = rec.rows[:n][order]
            grouped.slots = rec.slots[:n][order]
            grouped.tasks = rec.tasks[:n][order]
            grouped.starts = rec.starts[:n][order]
            grouped.ends = rec.ends[:n][order]
            grouped.flags = rec.flags[:n][order]
            grouped.size = n
            self._records = grouped
            self._offsets = np.searchsorted(
                grouped.rows, np.arange(len(self.platforms) + 1)
            )
        return self._records, self._offsets

    def _task_objects(self, tasks: Sequence[Task] | None) -> Sequence[Task]:
        objs = self._default_tasks if tasks is None else tasks
        if objs is None:
            raise ValueError(
                "this batch recorded no shared Task objects; pass tasks=..."
            )
        return objs

    def schedule(self, i: int, tasks: Sequence[Task] | None = None) -> Schedule:
        """Materialize row *i* as a :class:`Schedule`.

        ``tasks`` maps task indices to :class:`Task` objects (defaults
        to the tasks the batch was built from, when shared).  Placement
        order is the scalar loop's append order, so list-order-sensitive
        consumers (metric sums, ``Schedule.tasks()``) see identical
        output.
        """
        task_objs = self._task_objects(tasks)
        rec, offsets = self._sorted_records()
        lo, hi = int(offsets[i]), int(offsets[i + 1])
        row_workers = self.workers[i]
        schedule = Schedule(self.platforms[i])
        add = schedule.add
        for t, s, start, end, aborted in zip(
            rec.tasks[lo:hi].tolist(),
            rec.slots[lo:hi].tolist(),
            rec.starts[lo:hi].tolist(),
            rec.ends[lo:hi].tolist(),
            rec.flags[lo:hi].tolist(),
        ):
            add(task_objs[t], row_workers[s], start, end=end, aborted=aborted)
        return schedule

    def spoliations(
        self, i: int, tasks: Sequence[Task] | None = None
    ) -> list[SpoliationEvent]:
        """Row *i*'s spoliation events, in chronological order."""
        task_objs = self._task_objects(tasks)
        chunks = self._sp_chunks
        if not chunks["rows"]:
            return []
        rows = np.concatenate(chunks["rows"])
        keep = np.flatnonzero(rows == i)
        if keep.size == 0:
            return []
        cat = {k: np.concatenate(v)[keep] for k, v in chunks.items()}
        row_workers = self.workers[i]
        return [
            SpoliationEvent(
                task=task_objs[int(t)],
                victim_worker=row_workers[int(v)],
                new_worker=row_workers[int(w)],
                abort_time=float(at),
                old_completion=float(old),
                new_completion=float(new),
            )
            for t, v, w, at, old, new in zip(
                cat["tasks"], cat["vslots"], cat["nslots"],
                cat["times"], cat["olds"], cat["news"],
            )
        ]


class _LockstepEngine:
    """The shared lockstep core; see the module docstring for the model."""

    def __init__(
        self,
        *,
        cpu: np.ndarray,
        gpu: np.ndarray,
        priority: np.ndarray,
        platforms: Sequence[Platform],
        succ_indptr: np.ndarray | None = None,
        succ_indices: np.ndarray | None = None,
        indegree: np.ndarray | None = None,
        migrate: bool = True,
        victim_rule: str = "priority",
        anchor_stale: bool = False,
    ):
        B, n = cpu.shape
        self.B, self.n = B, n
        self.cpu = np.ascontiguousarray(cpu, dtype=np.float64)
        self.gpu = np.ascontiguousarray(gpu, dtype=np.float64)
        self.prio = np.ascontiguousarray(priority, dtype=np.float64)
        self.platforms = tuple(platforms)
        self.worker_tuples = tuple(_service_workers(p) for p in self.platforms)
        W = max(len(ws) for ws in self.worker_tuples)
        self.W = W
        self.exists = np.zeros((B, W), dtype=bool)
        self.is_gpu = np.zeros((B, W), dtype=bool)
        for b, ws in enumerate(self.worker_tuples):
            self.exists[b, : len(ws)] = True
            for s, w in enumerate(ws):
                if w.kind is ResourceKind.GPU:
                    self.is_gpu[b, s] = True
        self.migrate = migrate
        self.victim_rule = victim_rule
        self.anchor_stale = anchor_stale

        # Affinity queue in sorted-position space; position 0 = CPU end.
        self.order = batch_queue_order(self.cpu, self.gpu, self.prio)
        self.static_queue = succ_indptr is None
        if self.static_queue:
            # Independent tasks: the queue only ever shrinks from its two
            # ends, so a [front, back] window is enough.
            self.front = np.zeros(B, dtype=np.int64)
            self.back = np.full(B, n - 1, dtype=np.int64)
        else:
            self.succ_indptr = succ_indptr
            self.succ_indices = succ_indices
            self.pos = np.empty((B, n), dtype=np.int64)
            np.put_along_axis(
                self.pos,
                self.order,
                np.broadcast_to(np.arange(n, dtype=np.int64), (B, n)),
                axis=1,
            )
            self.indeg = np.ascontiguousarray(
                np.broadcast_to(indegree, (B, n)), dtype=np.int64
            )
            self.indeg_flat = self.indeg.reshape(-1)
            self.qmask = np.zeros((B, n), dtype=bool)
            rr, tt = np.nonzero(self.indeg == 0)
            pp = self.pos[rr, tt]
            self.qmask[rr, pp] = True
            self.qcount = self.qmask.sum(axis=1).astype(np.int64)
            # Live-band hints: every queued position of row b lies in
            # [qlo[b], qhi[b]].  The band tightens as the two ends are
            # popped and re-widens on insertion, so the end-of-queue
            # argmax scans only the active band instead of all n slots.
            self.qlo = np.full(B, n, dtype=np.int64)
            self.qhi = np.full(B, -1, dtype=np.int64)
            np.minimum.at(self.qlo, rr, pp)
            np.maximum.at(self.qhi, rr, pp)

        # Worker slot state; an idle slot has w_end == +inf.
        self.w_task = np.full((B, W), -1, dtype=np.int64)
        self.w_end = np.full((B, W), np.inf)
        self.w_start = np.zeros((B, W))
        self.w_seq = np.zeros((B, W), dtype=np.int64)
        self.seq_counter = np.zeros(B, dtype=np.int64)  # heap tiebreak order
        self.remaining = np.full(B, n, dtype=np.int64)
        self.first_idle = np.full(B, np.nan)
        #: per-row heaps of stale completion times (DAG anchor semantics)
        self.phantoms: dict[int, list[float]] = {}
        self.stats = SimStats()
        self._cols = np.arange(W, dtype=np.int64)
        self.records = _Records(B * n + B)
        self._sp_chunks: dict[str, list[np.ndarray]] = {
            "rows": [], "tasks": [], "vslots": [], "nslots": [],
            "times": [], "olds": [], "news": [],
        }

    # -- primitive steps ---------------------------------------------------

    def _start(
        self,
        rows: np.ndarray,
        slots: np.ndarray,
        tasks: np.ndarray,
        now: np.ndarray,
        durations: np.ndarray,
    ) -> None:
        """Begin executions; rows are unique within one call."""
        self.w_task[rows, slots] = tasks
        self.w_start[rows, slots] = now
        self.w_end[rows, slots] = now + durations
        self.w_seq[rows, slots] = self.seq_counter[rows]
        self.seq_counter[rows] += 1

    def _pop_queue(
        self, rows: np.ndarray, gpu_side: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Pop each row's queue from the CPU or GPU end; returns task ids."""
        if self.static_queue:
            posv = np.where(gpu_side, self.back[rows], self.front[rows])
            tasks = self.order[rows, posv]
            self.back[rows[gpu_side]] -= 1
            self.front[rows[~gpu_side]] += 1
        else:
            lo = int(self.qlo[rows].min())
            hi = int(self.qhi[rows].max()) + 1
            sub = self.qmask[rows, lo:hi]  # (K, band) — argmax both ends
            fpos = sub.argmax(axis=1) + lo
            bpos = (hi - 1) - sub[:, ::-1].argmax(axis=1)
            posv = np.where(gpu_side, bpos, fpos)
            tasks = self.order[rows, posv]
            self.qmask[rows, posv] = False
            self.qcount[rows] -= 1
            # Rows in one call are distinct, so each hint moves once.
            self.qlo[rows[~gpu_side]] = fpos[~gpu_side] + 1
            self.qhi[rows[gpu_side]] = bpos[gpu_side] - 1
        durations = np.where(
            gpu_side, self.gpu[rows, tasks], self.cpu[rows, tasks]
        )
        return tasks, durations

    def _queue_nonempty(self, rows: np.ndarray) -> np.ndarray:
        if self.static_queue:
            return self.front[rows] <= self.back[rows]
        return self.qcount[rows] > 0

    # -- spoliation --------------------------------------------------------

    def _try_spoliate(
        self,
        rows: np.ndarray,
        slots: np.ndarray,
        gpu_side: np.ndarray,
        t: np.ndarray,
        progress: np.ndarray,
    ) -> np.ndarray:
        """Poll rows whose queue ran dry for a spoliation victim.

        Returns a boolean array over *rows* marking which polls
        spoliated (the rest changed no state).

        Victim choice mirrors the scalar rules exactly: among running
        executions on the *other* resource class that the polling worker
        would finish strictly earlier (``now + new_time < end -
        TIME_EPS``), pick by maximal priority then latest completion
        (``victim_rule="priority"``, the DAG policy) or latest
        completion then maximal priority (``"completion"``, the
        independent loop), tie-broken by smallest task index.  The
        successive masked-max filters below implement that lexicographic
        choice; the exact float ``==`` against the column max selects
        ties, not approximate equality, which is why no epsilon belongs
        there.
        """
        sub_end = self.w_end[rows]  # (K, W)
        sub_task = self.w_task[rows]
        running = self.exists[rows] & np.isfinite(sub_end)
        other = running & (self.is_gpu[rows] != gpu_side[:, None])
        if not other.any():
            return np.zeros(rows.size, dtype=bool)
        safe_task = np.where(other, sub_task, 0)
        rows_col = rows[:, None]
        new_time = np.where(
            gpu_side[:, None],
            self.gpu[rows_col, safe_task],
            self.cpu[rows_col, safe_task],
        )
        improving = other & (t[rows][:, None] + new_time < sub_end - TIME_EPS)
        found = improving.any(axis=1)
        if not found.any():
            return found
        fr = np.flatnonzero(found)
        imp = improving[fr]
        stc = safe_task[fr]
        k_prio = np.where(imp, self.prio[rows[fr][:, None], stc], -np.inf)
        k_end = np.where(imp, sub_end[fr], -np.inf)
        if self.victim_rule == "priority":
            k1, k2 = k_prio, k_end
        else:
            k1, k2 = k_end, k_prio
        m1 = k1.max(axis=1)
        tie1 = imp & (k1 == m1[:, None])
        k2m = np.where(tie1, k2, -np.inf)
        m2 = k2m.max(axis=1)
        tie2 = tie1 & (k2m == m2[:, None])
        cand_idx = np.where(tie2, stc, self.n)
        vtask = cand_idx.min(axis=1)
        vcol = (tie2 & (stc == vtask[:, None])).argmax(axis=1)

        rr = rows[fr]
        ss = slots[fr]
        ar = np.arange(fr.size)
        vend = sub_end[fr][ar, vcol]
        vstart = self.w_start[rr, vcol]
        ndur = new_time[fr][ar, vcol]
        now = t[rr]

        self.records.append(rr, vcol, vtask, vstart, now, True)
        sp = self._sp_chunks
        sp["rows"].append(rr)
        sp["tasks"].append(vtask)
        sp["vslots"].append(vcol)
        sp["nslots"].append(ss)
        sp["times"].append(now)
        sp["olds"].append(vend)
        sp["news"].append(now + ndur)

        self.w_end[rr, vcol] = np.inf
        self.w_task[rr, vcol] = -1
        self.stats.aborts += int(rr.size)
        if self.anchor_stale:
            # The scalar DAG loop leaves the victim's old completion in
            # its heap and lets it anchor a (possibly empty) window.
            for b, e in zip(rr.tolist(), vend.tolist()):
                heapq.heappush(self.phantoms.setdefault(b, []), e)
        self._start(rr, ss, vtask, now, ndur)
        progress[rr] = True
        return found

    # -- settle ------------------------------------------------------------

    def _settle(self, t: np.ndarray, rows_mask: np.ndarray) -> None:
        """Serve idle workers until no row makes progress.

        Mirrors the scalar settle structure: each *pass* snapshots a
        row's idle slots and serves each exactly once, in service order
        (GPUs first); slots freed mid-pass by spoliation wait for the
        next pass.  Each *sub-iteration* serves at most one slot per
        row — rows at different service positions advance together.

        A failed empty-queue poll is stateless, and the queue cannot
        refill mid-settle, so once a row's poll of one resource class
        comes up empty every later poll of that class in the same pass
        must fail too: those slots are bulk-skipped (the class is marked
        *dead* for the rest of the pass), charging their ``pick()``
        calls to the stats in one add.  This collapses the
        empty-queue tail — per pass each row performs at most one
        meaningful poll per class plus its queue pops.
        """
        cols = self._cols
        is_gpu = self.is_gpu
        active = rows_mask
        while active.any():
            snapshot = active[:, None] & self.exists & ~np.isfinite(self.w_end)
            progress = np.zeros(self.B, dtype=bool)
            ptr = np.zeros(self.B, dtype=np.int64)
            dead_cpu = np.zeros(self.B, dtype=bool)
            dead_gpu = np.zeros(self.B, dtype=bool)
            any_dead = False
            while True:
                eligible = snapshot & (cols >= ptr[:, None])
                if any_dead:
                    eligible &= ~(is_gpu & dead_gpu[:, None])
                    eligible &= is_gpu | ~dead_cpu[:, None]
                serving = eligible.any(axis=1)
                if not serving.any():
                    break
                slot_of = eligible.argmax(axis=1)
                rset = np.flatnonzero(serving)
                svec = slot_of[rset]
                self.stats.picks += rset.size
                gpu_side = is_gpu[rset, svec]
                has_queue = self._queue_nonempty(rset)
                if has_queue.any():
                    sel = np.flatnonzero(has_queue)
                    pr, ps, pg = rset[sel], svec[sel], gpu_side[sel]
                    tasks, durations = self._pop_queue(pr, pg)
                    self._start(pr, ps, tasks, t[pr], durations)
                    progress[pr] = True
                if not has_queue.all():
                    sel = np.flatnonzero(~has_queue)
                    er, es, eg = rset[sel], svec[sel], gpu_side[sel]
                    unset = np.isnan(self.first_idle[er])
                    if unset.any():
                        self.first_idle[er[unset]] = t[er[unset]]
                    if self.migrate:
                        spoliated = self._try_spoliate(er, es, eg, t, progress)
                    else:
                        spoliated = np.zeros(er.size, dtype=bool)
                    failed = ~spoliated
                    if failed.any():
                        fr, fs, fg = er[failed], es[failed], eg[failed]
                        dead_gpu[fr[fg]] = True
                        dead_cpu[fr[~fg]] = True
                        any_dead = True
                        # Charge the skipped same-class polls of this pass.
                        same = is_gpu[fr] == fg[:, None]
                        skipped = snapshot[fr] & (cols > fs[:, None]) & same
                        self.stats.picks += int(skipped.sum())
                ptr[rset] = svec + 1
            active = progress

    # -- main loop ---------------------------------------------------------

    def run(self) -> None:
        started = _time.perf_counter()
        B, n = self.B, self.n
        stats = self.stats
        t = np.zeros(B)
        if n > 0:
            self._settle(t, self.remaining > 0)
        while True:
            act = self.remaining > 0
            if not act.any():
                break
            # Each row's window anchors at its earliest event — a live
            # completion or (DAG mode) a phantom stale event.
            t = self.w_end.min(axis=1)
            if self.phantoms:
                for b in list(self.phantoms):
                    if act[b] and self.phantoms[b][0] < t[b]:
                        t[b] = self.phantoms[b][0]
            stalled = act & ~np.isfinite(t)
            if stalled.any():
                raise RuntimeError(
                    f"policy stalled in batch run: {int(stalled.sum())} "
                    "row(s) left tasks unfinished with no executions in flight"
                )
            window = t + TIME_EPS
            if self.phantoms:
                for b in list(self.phantoms):
                    if not act[b]:
                        continue
                    heap = self.phantoms[b]
                    dropped = 0
                    while heap and heap[0] <= window[b]:
                        heapq.heappop(heap)
                        dropped += 1
                    if dropped:
                        stats.events += dropped
                        stats.stale_events += dropped
                    if not heap:
                        del self.phantoms[b]
            done = act[:, None] & (self.w_end <= window[:, None])
            rows, slots = np.nonzero(done)
            if rows.size == 0:
                continue  # a window anchored by phantoms alone
            ends = self.w_end[rows, slots]
            seqs = self.w_seq[rows, slots]
            # Per-row (end, seq) order — exactly the scalar heap-pop order.
            pop_order = np.lexsort((seqs, ends, rows))
            rows, slots = rows[pop_order], slots[pop_order]
            ends = ends[pop_order]
            tasks = self.w_task[rows, slots]
            starts = self.w_start[rows, slots]
            # Group boundaries: rows is sorted, groups are contiguous.
            change = np.empty(rows.size, dtype=bool)
            change[0] = True
            np.not_equal(rows[1:], rows[:-1], out=change[1:])
            first_ix = np.flatnonzero(change)
            urows = rows[first_ix]
            counts = np.diff(np.append(first_ix, rows.size))
            self.records.append(rows, slots, tasks, starts, ends, False)
            stats.events += rows.size
            stats.tasks += rows.size
            self.w_end[rows, slots] = np.inf
            self.w_task[rows, slots] = -1
            self.remaining[urows] -= counts
            if not self.static_queue:
                s0 = self.succ_indptr[tasks]
                cnt = self.succ_indptr[tasks + 1] - s0
                if cnt.sum():
                    succ_t = self.succ_indices[_ragged_gather(s0, cnt)]
                    succ_r = np.repeat(rows, cnt)
                    flat = succ_r * n + succ_t
                    np.subtract.at(self.indeg_flat, flat, 1)
                    # A successor reaching indegree 0 matches for every
                    # one of its just-resolved edges, so dedupe only the
                    # (small) ready candidate set, not all of `flat`.
                    ready = np.unique(flat[self.indeg_flat[flat] == 0])
                    if ready.size:
                        ready_r = ready // n
                        ready_t = ready - ready_r * n
                        ready_p = self.pos[ready_r, ready_t]
                        self.qmask[ready_r, ready_p] = True
                        np.add.at(self.qcount, ready_r, 1)
                        np.minimum.at(self.qlo, ready_r, ready_p)
                        np.maximum.at(self.qhi, ready_r, ready_p)
            settle_rows = np.zeros(B, dtype=bool)
            settle_rows[urows] = True
            settle_rows &= self.remaining > 0
            if settle_rows.any():
                self._settle(t, settle_rows)
        stats.events = int(stats.events)
        stats.tasks = int(stats.tasks)
        stats.picks = int(stats.picks)
        stats.wall_s = _time.perf_counter() - started

    # -- result ------------------------------------------------------------

    def finalize(self, default_tasks: tuple[Task, ...] | None) -> BatchResult:
        B, W = self.B, self.W
        rec = self.records
        size = rec.size
        rows = rec.rows[:size]
        ends = rec.ends[:size]
        flags = rec.flags[:size]

        makespans = np.zeros(B)
        completed = ~flags
        np.maximum.at(makespans, rows[completed], ends[completed])

        first_idle = self.first_idle.copy()
        need = np.isnan(first_idle)
        if need.any():
            # Scalar fallback: min over all workers of their last busy
            # instant (0.0 for a never-used worker), aborted included.
            worker_max = np.zeros((B, W))
            np.maximum.at(worker_max, (rows, rec.slots[:size]), ends)
            fallback = np.where(self.exists, worker_max, np.inf).min(axis=1)
            first_idle[need] = fallback[need]

        abort_counts = np.bincount(rows[flags], minlength=B).astype(np.int64)

        return BatchResult(
            platforms=self.platforms,
            workers=self.worker_tuples,
            n_tasks=self.n,
            makespans=makespans,
            t_first_idle=first_idle,
            abort_counts=abort_counts,
            stats=self.stats,
            records=rec,
            sp_chunks=self._sp_chunks,
            default_tasks=default_tasks,
        )


def _as_platforms(
    platforms: Platform | Sequence[Platform], batch: int
) -> tuple[Platform, ...]:
    if isinstance(platforms, Platform):
        return (platforms,) * batch
    out = tuple(platforms)
    if len(out) != batch:
        raise ValueError(f"expected {batch} platforms, got {len(out)}")
    return out


def batch_heteroprio_schedule(
    cpu_times: np.ndarray,
    gpu_times: np.ndarray,
    platforms: Platform | Sequence[Platform],
    *,
    priorities: np.ndarray | None = None,
    spoliation: bool = True,
    migration: str = "spoliation",
) -> BatchResult:
    """Run HeteroPrio on a ``(B, n)`` batch of independent-task instances.

    Bit-identical to per-row
    :func:`repro.core.heteroprio.heteroprio_schedule`
    (``compute_ns=False``) with the same migration mode.  The
    ``"preemption"`` migration mode keeps partial progress per victim
    and is inherently sequential — callers fall back to the scalar loop.
    """
    cpu = np.ascontiguousarray(cpu_times, dtype=np.float64)
    gpu = np.ascontiguousarray(gpu_times, dtype=np.float64)
    if cpu.ndim != 2 or cpu.shape != gpu.shape:
        raise ValueError("cpu_times/gpu_times must be matching (B, n) arrays")
    mode = migration if spoliation else "none"
    if mode == "preemption":
        raise NotImplementedError(
            "preemption migration is sequential per instance; use the scalar loop"
        )
    B, _ = cpu.shape
    prio = (
        np.zeros_like(cpu)
        if priorities is None
        else np.ascontiguousarray(np.broadcast_to(priorities, cpu.shape))
    )
    engine = _LockstepEngine(
        cpu=cpu,
        gpu=gpu,
        priority=prio,
        platforms=_as_platforms(platforms, B),
        migrate=mode == "spoliation",
        victim_rule="completion",
        anchor_stale=False,
    )
    engine.run()
    # Rows are distinct instances with distinct Task objects; callers
    # pass their own task list to BatchResult.schedule(i, tasks=...).
    return engine.finalize(None)


def batch_simulate_dag(
    graph: CompiledGraph,
    platforms: Platform | Sequence[Platform],
    priorities: np.ndarray,
    *,
    cpu_times: np.ndarray | None = None,
    gpu_times: np.ndarray | None = None,
    spoliation: bool = True,
    victim_rule: str = "priority",
) -> BatchResult:
    """Run the HeteroPrio DAG policy on a batch sharing one graph structure.

    ``priorities`` is ``(B, n)`` (one priority vector per row — e.g. one
    ranking scheme per row); ``cpu_times``/``gpu_times`` default to the
    graph's own durations broadcast across the batch, or may be
    ``(B, n)`` per-row samples (noise sweeps over one structure).
    Bit-identical to :func:`repro.simulator.simulate` with
    :class:`~repro.schedulers.online.heteroprio.HeteroPrioPolicy` per
    row.
    """
    prio = np.atleast_2d(np.asarray(priorities, dtype=np.float64))
    B, n = prio.shape
    if n != len(graph):
        raise ValueError("priorities second axis must match graph size")
    cpu = graph.cpu_times if cpu_times is None else np.asarray(cpu_times)
    gpu = graph.gpu_times if gpu_times is None else np.asarray(gpu_times)
    cpu = np.ascontiguousarray(np.broadcast_to(cpu, (B, n)), dtype=np.float64)
    gpu = np.ascontiguousarray(np.broadcast_to(gpu, (B, n)), dtype=np.float64)
    engine = _LockstepEngine(
        cpu=cpu,
        gpu=gpu,
        priority=prio,
        platforms=_as_platforms(platforms, B),
        succ_indptr=graph.succ_indptr,
        succ_indices=graph.succ_indices,
        indegree=np.diff(graph.pred_indptr),
        migrate=spoliation,
        victim_rule=victim_rule,
        anchor_stale=True,
    )
    engine.run()
    default = graph.tasks if cpu_times is None and gpu_times is None else None
    return engine.finalize(default)
