"""The discrete-event DAG runtime.

The simulator advances time over task-completion events.  At each event
it (1) retires finished executions, (2) releases successors whose last
dependency just resolved, announcing them to the policy in priority
order, and (3) repeatedly polls idle workers (GPUs first, then CPUs, as
in :mod:`repro.core.heteroprio`) until no policy action is possible.
Spoliation aborts the victim's in-flight execution — its progress is
lost and the interval is recorded as an aborted placement.

The loop is written for incremental, allocation-free stepping (see the
"Simulator internals" section of ``docs/architecture.md``):

* the mapping of in-flight executions handed to ``policy.pick()`` is
  *one live dict*, updated as executions start and finish, and exposed
  read-only through a :class:`types.MappingProxyType` — it is never
  rebuilt per pick;
* workers are addressed by dense integer *slots*; the idle set is a
  flag array walked in a precomputed service order (GPUs first, by
  index), so no ``settle()`` round ever sorts;
* per-task CPU/GPU times and successor tuples are flattened into plain
  dicts at :meth:`RuntimeSimulator.run` entry, bypassing
  :meth:`Task.time_on` and the per-call list copies of
  :meth:`TaskGraph.successors`;
* completion events carry a per-slot *generation* stamp; events whose
  stamp is stale (the execution was spoliated) are skipped without
  touching any other state.

Every run also fills :attr:`RuntimeSimulator.last_stats` with
:class:`SimStats` hot-loop counters (events, picks, tasks, aborts,
wall time) — the raw material of ``repro bench``.

A differential test (``tests/test_differential_simcore.py``) pins this
implementation event-for-event to the pre-optimization loop on every
figure workload.
"""

from __future__ import annotations

import heapq
import itertools
import time as _time
from dataclasses import asdict, dataclass
from types import MappingProxyType
from typing import Iterable

from repro.core.platform import Platform, ResourceKind, Worker
from repro.core.schedule import Schedule, TIME_EPS
from repro.core.task import Task
from repro.dag.graph import TaskGraph
from repro.schedulers.online.base import OnlinePolicy, RunningView, Spoliate, StartTask

__all__ = ["RuntimeSimulator", "SimStats", "simulate"]


@dataclass
class SimStats:
    """Hot-loop counters of one simulator run.

    ``events`` counts completion events popped from the heap (including
    stale ones); ``stale_events`` the subset skipped via generation
    stamps; ``picks`` the ``policy.pick()`` calls; ``tasks`` completed
    tasks; ``aborts`` spoliated executions.  ``wall_s`` is the wall
    clock of the whole :meth:`RuntimeSimulator.run` call.

    The lockstep batch engine (:mod:`repro.simulator.batch`) emits one
    aggregate ``SimStats`` per batch with the same counting conventions,
    so scalar and batch runs are directly comparable; use
    :meth:`merge` / :meth:`aggregate` to sum counters across runs.
    """

    events: int = 0
    stale_events: int = 0
    picks: int = 0
    tasks: int = 0
    aborts: int = 0
    wall_s: float = 0.0

    def merge(self, other: "SimStats") -> None:
        """Accumulate *other*'s counters (and wall clock) into this one."""
        self.events += other.events
        self.stale_events += other.stale_events
        self.picks += other.picks
        self.tasks += other.tasks
        self.aborts += other.aborts
        self.wall_s += other.wall_s

    @classmethod
    def aggregate(cls, runs: Iterable["SimStats"]) -> "SimStats":
        """Sum a sequence of per-run stats into one aggregate record."""
        total = cls()
        for stats in runs:
            total.merge(stats)
        return total

    @property
    def events_per_sec(self) -> float:
        return self.events / self.wall_s if self.wall_s > 0 else float("inf")

    @property
    def picks_per_sec(self) -> float:
        return self.picks / self.wall_s if self.wall_s > 0 else float("inf")

    def to_dict(self) -> dict:
        payload = asdict(self)
        payload["events_per_sec"] = self.events_per_sec
        payload["picks_per_sec"] = self.picks_per_sec
        return payload


class RuntimeSimulator:
    """Execute a task graph under an online scheduling policy."""

    def __init__(self, graph: TaskGraph, platform: Platform, policy: OnlinePolicy):
        self.graph = graph
        self.platform = platform
        self.policy = policy
        #: Counters of the most recent :meth:`run` (``None`` before).
        self.last_stats: SimStats | None = None

    def run(self) -> Schedule:
        """Simulate to completion and return the full schedule.

        Raises ``RuntimeError`` if the policy stalls (leaves workers idle
        forever while tasks remain), which would indicate a policy bug.
        """
        graph, platform, policy = self.graph, self.platform, self.policy
        # repro-lint: disable=wall-clock,flow-nondeterminism -- SimStats.wall_s is bench instrumentation only
        # It never feeds the schedule, the event order, or any
        # ResultCache-keyed metric; the flow analyzer sees it because
        # the taint pass is flow-insensitive over `self`.
        started = _time.perf_counter()
        stats = SimStats()
        self.last_stats = stats
        schedule = Schedule(platform)
        if len(graph) == 0:
            stats.wall_s = _time.perf_counter() - started
            return schedule

        policy.prepare(platform)

        # -- flat per-run precomputation ---------------------------------
        workers: tuple[Worker, ...] = tuple(platform.workers())
        n_workers = len(workers)
        slot_of = {w: i for i, w in enumerate(workers)}
        kind_of = tuple(w.kind for w in workers)
        # Idle polling order: GPUs first, then CPUs, each by index.
        service_slots = tuple(sorted(
            range(n_workers),
            key=lambda i: (0 if kind_of[i] is ResourceKind.GPU else 1, workers[i].index),
        ))
        # 1 = GPU time, 0 = CPU time: index into the per-task time pair.
        time_index = tuple(1 if k is ResourceKind.GPU else 0 for k in kind_of)
        task_times = {t: (t.cpu_time, t.gpu_time) for t in graph}
        succ_of = graph.successor_map()
        indegree = {task: graph.in_degree(task) for task in graph}
        remaining = len(graph)

        # -- live state ---------------------------------------------------
        # The one running-view mapping: updated incrementally, exposed
        # read-only to the policy, never rebuilt.
        running: dict[Worker, RunningView] = {}
        running_ro = MappingProxyType(running)
        idle = [True] * n_workers
        generations = [0] * n_workers
        events: list[tuple[float, int, int, int]] = []  # (end, seq, slot, gen)
        seq = itertools.count()
        heappush, heappop = heapq.heappush, heapq.heappop
        pick = policy.pick
        notify_started = policy.task_started
        notify_finished = policy.task_finished

        def announce(tasks: list[Task], now: float) -> None:
            tasks.sort(key=lambda t: (-t.priority, t.uid))
            policy.tasks_ready(tasks, now)

        def start(task: Task, slot: int, now: float) -> None:
            worker = workers[slot]
            end = now + task_times[task][time_index[slot]]
            gen = generations[slot] + 1
            generations[slot] = gen
            running[worker] = RunningView(task=task, worker=worker, start=now, end=end)
            idle[slot] = False
            heappush(events, (end, next(seq), slot, gen))
            notify_started(task, worker, now)

        def settle(now: float) -> None:
            progress = True
            while progress:
                progress = False
                # Snapshot the idle set in service order: a worker freed
                # by a spoliation during this pass is only served on the
                # next pass, like the sorted(idle) snapshot it replaces.
                pass_slots = [i for i in service_slots if idle[i]]
                for slot in pass_slots:
                    if not idle[slot]:
                        continue
                    stats.picks += 1
                    action = pick(workers[slot], now, running_ro)
                    if action is None:
                        continue
                    if isinstance(action, StartTask):
                        start(action.task, slot, now)
                        progress = True
                    elif isinstance(action, Spoliate):
                        victim = running.get(action.victim)
                        if victim is None or victim.worker.kind is kind_of[slot]:
                            raise RuntimeError(
                                f"policy {policy.name} issued an invalid spoliation"
                            )
                        vslot = slot_of[victim.worker]
                        schedule.add(
                            victim.task, victim.worker, victim.start, end=now, aborted=True
                        )
                        del running[victim.worker]
                        generations[vslot] += 1
                        idle[vslot] = True
                        stats.aborts += 1
                        policy.task_aborted(victim.task, victim.worker, now)
                        start(victim.task, slot, now)
                        progress = True
                    else:  # pragma: no cover - exhaustive Action union
                        raise TypeError(f"unknown action {action!r}")

        def stall_error() -> RuntimeError:
            finished_tasks = {p.task for p in schedule.completed_placements()}
            pending = [t for t in graph if t not in finished_tasks]
            sample = ", ".join(f"{t.name}#{t.uid}" for t in pending[:5])
            if len(pending) > 5:
                sample += ", ..."
            idle_names = ", ".join(
                str(workers[i]) for i in service_slots if idle[i]
            ) or "none"
            return RuntimeError(
                f"policy {policy.name} stalled with {remaining} tasks unfinished "
                f"({sample}); idle workers: {idle_names}; "
                f"{len(running)} executions still in flight"
            )

        announce(graph.sources(), 0.0)
        settle(0.0)
        while remaining > 0:
            if not events:
                raise stall_error()
            time, _, slot, gen = heappop(events)
            stats.events += 1
            finished: list[RunningView] = []
            if generations[slot] == gen:
                finished.append(running.pop(workers[slot]))
                idle[slot] = True
            else:
                stats.stale_events += 1
            # Batch all completions within TIME_EPS of this event so
            # simultaneous finishers observe a consistent queue state.
            limit = time + TIME_EPS
            while events and events[0][0] <= limit:
                _, _, slot2, gen2 = heappop(events)
                stats.events += 1
                if generations[slot2] == gen2:
                    finished.append(running.pop(workers[slot2]))
                    idle[slot2] = True
                else:
                    stats.stale_events += 1
            if not finished:
                continue
            newly_ready: list[Task] = []
            for view in finished:
                schedule.add(view.task, view.worker, view.start, end=view.end)
                remaining -= 1
                stats.tasks += 1
                notify_finished(view.task, view.worker, view.end)
                for succ in succ_of[view.task]:
                    left = indegree[succ] - 1
                    indegree[succ] = left
                    if left == 0:
                        newly_ready.append(succ)
            if newly_ready:
                announce(newly_ready, time)
            if remaining > 0:
                settle(time)
        stats.wall_s = _time.perf_counter() - started
        return schedule


def simulate(graph: TaskGraph, platform: Platform, policy: OnlinePolicy) -> Schedule:
    """Convenience wrapper: build a :class:`RuntimeSimulator` and run it."""
    return RuntimeSimulator(graph, platform, policy).run()
