"""The discrete-event DAG runtime.

The simulator advances time over task-completion events.  At each event
it (1) retires finished executions, (2) releases successors whose last
dependency just resolved, announcing them to the policy in priority
order, and (3) repeatedly polls idle workers (GPUs first, then CPUs, as
in :mod:`repro.core.heteroprio`) until no policy action is possible.
Spoliation aborts the victim's in-flight execution — its progress is
lost and the interval is recorded as an aborted placement.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass

from repro.core.platform import Platform, ResourceKind, Worker
from repro.core.schedule import Schedule, TIME_EPS
from repro.core.task import Task
from repro.dag.graph import TaskGraph
from repro.schedulers.online.base import OnlinePolicy, RunningView, Spoliate, StartTask

__all__ = ["RuntimeSimulator", "simulate"]


@dataclass
class _Execution:
    task: Task
    worker: Worker
    start: float
    end: float
    generation: int


class RuntimeSimulator:
    """Execute a task graph under an online scheduling policy."""

    def __init__(self, graph: TaskGraph, platform: Platform, policy: OnlinePolicy):
        self.graph = graph
        self.platform = platform
        self.policy = policy

    def run(self) -> Schedule:
        """Simulate to completion and return the full schedule.

        Raises ``RuntimeError`` if the policy stalls (leaves workers idle
        forever while tasks remain), which would indicate a policy bug.
        """
        graph, platform, policy = self.graph, self.platform, self.policy
        schedule = Schedule(platform)
        if len(graph) == 0:
            return schedule

        policy.prepare(platform)
        indegree = {task: graph.in_degree(task) for task in graph}
        remaining = len(graph)

        running: dict[Worker, _Execution] = {}
        idle: set[Worker] = set(platform.workers())
        generations: dict[Worker, int] = {w: 0 for w in platform.workers()}
        events: list[tuple[float, int, Worker, int]] = []
        seq = itertools.count()

        def service_key(worker: Worker) -> tuple[int, int]:
            return (0 if worker.kind is ResourceKind.GPU else 1, worker.index)

        def announce(tasks: list[Task], now: float) -> None:
            tasks.sort(key=lambda t: (-t.priority, t.uid))
            policy.tasks_ready(tasks, now)

        def running_view() -> dict[Worker, RunningView]:
            return {
                w: RunningView(task=e.task, worker=w, start=e.start, end=e.end)
                for w, e in running.items()
            }

        def start(task: Task, worker: Worker, now: float) -> None:
            end = now + task.time_on(worker.kind)
            generations[worker] += 1
            running[worker] = _Execution(task, worker, now, end, generations[worker])
            idle.discard(worker)
            heapq.heappush(events, (end, next(seq), worker, generations[worker]))
            policy.task_started(task, worker, now)

        def settle(now: float) -> None:
            progress = True
            while progress:
                progress = False
                for worker in sorted(idle, key=service_key):
                    if worker not in idle:
                        continue
                    action = policy.pick(worker, now, running_view())
                    if action is None:
                        continue
                    if isinstance(action, StartTask):
                        start(action.task, worker, now)
                        progress = True
                    elif isinstance(action, Spoliate):
                        victim = running.get(action.victim)
                        if victim is None or victim.worker.kind is worker.kind:
                            raise RuntimeError(
                                f"policy {policy.name} issued an invalid spoliation"
                            )
                        schedule.add(
                            victim.task, victim.worker, victim.start, end=now, aborted=True
                        )
                        del running[victim.worker]
                        generations[victim.worker] += 1
                        idle.add(victim.worker)
                        policy.task_aborted(victim.task, victim.worker, now)
                        start(victim.task, worker, now)
                        progress = True
                    else:  # pragma: no cover - exhaustive Action union
                        raise TypeError(f"unknown action {action!r}")

        announce(graph.sources(), 0.0)
        settle(0.0)
        while remaining > 0:
            if not events:
                raise RuntimeError(
                    f"policy {policy.name} stalled with {remaining} tasks unfinished"
                )
            time, _, worker, gen = heapq.heappop(events)
            finished: list[_Execution] = []
            if generations[worker] == gen:
                finished.append(running.pop(worker))
            while events and events[0][0] <= time + TIME_EPS:
                time2, _, worker2, gen2 = heapq.heappop(events)
                if generations[worker2] == gen2:
                    finished.append(running.pop(worker2))
            if not finished:
                continue
            newly_ready: list[Task] = []
            for execution in finished:
                schedule.add(execution.task, execution.worker, execution.start,
                             end=execution.end)
                remaining -= 1
                idle.add(execution.worker)
                policy.task_finished(execution.task, execution.worker, execution.end)
                for succ in self.graph.successors(execution.task):
                    indegree[succ] -= 1
                    if indegree[succ] == 0:
                        newly_ready.append(succ)
            if newly_ready:
                announce(newly_ready, time)
            if remaining > 0:
                settle(time)
        return schedule


def simulate(graph: TaskGraph, platform: Platform, policy: OnlinePolicy) -> Schedule:
    """Convenience wrapper: build a :class:`RuntimeSimulator` and run it."""
    return RuntimeSimulator(graph, platform, policy).run()
