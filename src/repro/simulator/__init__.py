"""Discrete-event runtime simulator for DAG scheduling.

This package plays the role of StarPU in the paper's Section 6.2: it
executes a :class:`~repro.dag.graph.TaskGraph` on a
:class:`~repro.core.platform.Platform` under a pluggable online policy
(:mod:`repro.schedulers.online`), maintaining the ready set as
dependencies resolve and honouring spoliation requests.
"""

from repro.simulator.runtime import RuntimeSimulator, simulate
from repro.simulator.metrics import RunMetrics, compute_metrics

__all__ = ["RuntimeSimulator", "simulate", "RunMetrics", "compute_metrics"]
