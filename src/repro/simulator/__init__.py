"""Discrete-event runtime simulator for DAG scheduling.

This package plays the role of StarPU in the paper's Section 6.2: it
executes a :class:`~repro.dag.graph.TaskGraph` on a
:class:`~repro.core.platform.Platform` under a pluggable online policy
(:mod:`repro.schedulers.online`), maintaining the ready set as
dependencies resolve and honouring spoliation requests.

:mod:`repro.simulator.batch` is the lockstep sibling: it advances a
whole batch of instances at once over shared compiled-graph arrays,
event-for-event identical to the scalar loops here.
"""

from repro.simulator.runtime import RuntimeSimulator, SimStats, simulate
from repro.simulator.batch import (
    BatchResult,
    batch_heteroprio_schedule,
    batch_simulate_dag,
)
from repro.simulator.metrics import RunMetrics, compute_metrics

__all__ = [
    "BatchResult",
    "RuntimeSimulator",
    "SimStats",
    "batch_heteroprio_schedule",
    "batch_simulate_dag",
    "simulate",
    "RunMetrics",
    "compute_metrics",
]
