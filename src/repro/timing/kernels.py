"""Per-kernel CPU/GPU durations (tile size 960).

Calibration
-----------
CPU durations follow each kernel's flop count at ~30.7 double-precision
Gflop/s per core (a realistic sustained rate for a Haswell E5-2680 core
running MKL on 960x960 tiles).  GPU durations are derived from the
acceleration factors:

* **Cholesky** — exactly the paper's Table 1:
  DPOTRF 1.72, DTRSM 8.72, DSYRK 26.96, DGEMM 28.80.
* **QR / LU** — values representative of K40-era measurements reported
  for Chameleon-like tiled kernels (panel factorizations barely
  accelerated, trailing updates strongly accelerated).  The paper does
  not tabulate these; only their qualitative spread matters for the
  shapes of Figures 6-9.

All durations are in seconds.
"""

from __future__ import annotations

from dataclasses import dataclass
from types import MappingProxyType
from typing import Mapping

__all__ = ["KernelTiming", "CHOLESKY_KERNELS", "QR_KERNELS", "LU_KERNELS", "kernel_table"]


@dataclass(frozen=True)
class KernelTiming:
    """Reference durations of one kernel on each resource class."""

    kind: str
    cpu_time: float
    gpu_time: float

    @property
    def acceleration(self) -> float:
        """GPU speed-up ``p / q`` of this kernel."""
        return self.cpu_time / self.gpu_time


def _timing(kind: str, cpu_time: float, acceleration: float) -> KernelTiming:
    return KernelTiming(kind=kind, cpu_time=cpu_time, gpu_time=cpu_time / acceleration)


#: Cholesky kernels; acceleration factors are Table 1 of the paper.
CHOLESKY_KERNELS: Mapping[str, KernelTiming] = MappingProxyType(
    {
        "POTRF": _timing("POTRF", 0.0096, 1.72),   # b^3/3 flops
        "TRSM": _timing("TRSM", 0.0288, 8.72),     # b^3 flops
        "SYRK": _timing("SYRK", 0.0288, 26.96),    # b^3 flops
        "GEMM": _timing("GEMM", 0.0576, 28.80),    # 2 b^3 flops
    }
)

#: Tiled QR kernels (flat TS reduction tree).
QR_KERNELS: Mapping[str, KernelTiming] = MappingProxyType(
    {
        "GEQRT": _timing("GEQRT", 0.0320, 2.0),    # panel: poorly accelerated
        "ORMQR": _timing("ORMQR", 0.0576, 6.6),    # apply Q to the right
        "TSQRT": _timing("TSQRT", 0.0432, 2.7),    # triangle-on-square panel
        "TSMQR": _timing("TSMQR", 0.1152, 13.4),   # 4 b^3 flops trailing update
    }
)

#: Tiled LU (no pivoting) kernels.
LU_KERNELS: Mapping[str, KernelTiming] = MappingProxyType(
    {
        "GETRF": _timing("GETRF", 0.0192, 2.2),    # 2 b^3/3 flops panel
        "TRSM": _timing("TRSM", 0.0288, 8.72),     # row and column solves
        "GEMM": _timing("GEMM", 0.0576, 28.80),    # trailing update
    }
)


def kernel_table(factorization: str) -> Mapping[str, KernelTiming]:
    """The kernel timing table for ``"cholesky"``, ``"qr"`` or ``"lu"``."""
    tables = {"cholesky": CHOLESKY_KERNELS, "qr": QR_KERNELS, "lu": LU_KERNELS}
    try:
        return tables[factorization.lower()]
    except KeyError:
        raise ValueError(
            f"unknown factorization {factorization!r}; expected one of {sorted(tables)}"
        ) from None
