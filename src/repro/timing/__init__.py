"""Kernel timing models calibrated to the paper's measurements.

The paper feeds its algorithms with per-kernel durations measured by
StarPU on a 20-core Haswell + 4x K40-M node (tile size 960).  We cannot
re-measure that hardware, so :mod:`repro.timing.kernels` provides a
synthetic calibration whose *acceleration factors* match the paper's
Table 1 exactly for the Cholesky kernels, and published K40-era values
for the QR and LU kernels; absolute times follow the kernels' flop
counts at a realistic per-core rate.  See DESIGN.md, Section 2.
"""

from repro.timing.kernels import (
    CHOLESKY_KERNELS,
    LU_KERNELS,
    QR_KERNELS,
    KernelTiming,
    kernel_table,
)
from repro.timing.model import TimingModel

__all__ = [
    "KernelTiming",
    "TimingModel",
    "CHOLESKY_KERNELS",
    "QR_KERNELS",
    "LU_KERNELS",
    "kernel_table",
]
