"""Timing models: map kernel kinds to per-task durations, with optional noise.

A :class:`TimingModel` is the single source of durations for the DAG
generators.  The deterministic default reproduces the calibrated tables
of :mod:`repro.timing.kernels`; multiplicative lognormal noise can be
enabled to model the run-to-run variability real measurements exhibit
(shared caches, NUMA effects — Section 1 of the paper).
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.timing.kernels import KernelTiming, kernel_table

__all__ = ["TimingModel"]


class TimingModel:
    """Durations for the kernels of one factorization.

    Parameters
    ----------
    kernels:
        Kernel timing table (kind -> :class:`KernelTiming`).
    noise:
        Standard deviation of the lognormal multiplicative noise applied
        independently to each sampled duration (0 = deterministic).
        Noise perturbs CPU and GPU durations independently, so it also
        jitters acceleration factors, as in real measurements.
    rng:
        Random generator used when ``noise > 0``.
    """

    def __init__(
        self,
        kernels: Mapping[str, KernelTiming],
        *,
        noise: float = 0.0,
        rng: np.random.Generator | None = None,
    ):
        if noise < 0:
            raise ValueError("noise must be non-negative")
        if noise > 0 and rng is None:
            raise ValueError("a random generator is required when noise > 0")
        self._kernels = dict(kernels)
        self.noise = noise
        self._rng = rng

    @classmethod
    def for_factorization(
        cls,
        factorization: str,
        *,
        noise: float = 0.0,
        rng: np.random.Generator | None = None,
    ) -> "TimingModel":
        """Model using the calibrated table for ``cholesky``/``qr``/``lu``."""
        return cls(kernel_table(factorization), noise=noise, rng=rng)

    @property
    def kinds(self) -> list[str]:
        """Kernel kinds known to this model."""
        return sorted(self._kernels)

    def reference(self, kind: str) -> KernelTiming:
        """The noise-free reference timing of one kernel kind."""
        try:
            return self._kernels[kind]
        except KeyError:
            raise ValueError(f"unknown kernel kind {kind!r}") from None

    def sample(self, kind: str) -> tuple[float, float]:
        """Draw ``(cpu_time, gpu_time)`` for one task of the given kind."""
        ref = self.reference(kind)
        if self.noise == 0.0:
            return ref.cpu_time, ref.gpu_time
        assert self._rng is not None
        factors = np.exp(self._rng.normal(0.0, self.noise, size=2))
        return ref.cpu_time * float(factors[0]), ref.gpu_time * float(factors[1])

    def acceleration(self, kind: str) -> float:
        """Reference acceleration factor of one kernel kind."""
        return self.reference(kind).acceleration
