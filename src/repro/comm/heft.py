"""Data-aware HEFT: earliest finish time including estimated transfers.

This is HEFT as originally formulated (and StarPU's ``dmdas``): the
finish-time estimate of a ready task on a worker adds the cost of
fetching the task's inputs into that worker's memory space, based on the
data directory's *current* copy locations.  The estimate can go stale by
the time the task actually runs — exactly as in a real runtime.
"""

from __future__ import annotations

from repro.comm.memory import DataDirectory
from repro.comm.model import CommunicationModel, location_of
from repro.core.platform import Platform, Worker
from repro.core.task import Task
from repro.dag.graph import TaskGraph
from repro.schedulers.online.heft import HeftPolicy

__all__ = ["CommAwareHeftPolicy"]


class CommAwareHeftPolicy(HeftPolicy):
    """HEFT whose EFT rule accounts for data-transfer estimates."""

    name = "heft-comm"

    def __init__(self) -> None:
        super().__init__()
        self._directory: DataDirectory | None = None
        self._model: CommunicationModel | None = None
        self._graph: TaskGraph | None = None

    def attach_comm(
        self,
        directory: DataDirectory,
        model: CommunicationModel,
        graph: TaskGraph,
    ) -> None:
        """Called by the comm-aware simulator before the run starts."""
        self._directory = directory
        self._model = model
        self._graph = graph

    def _transfer_estimate(self, task: Task, worker: Worker) -> float:
        if self._directory is None or self._model is None or self._graph is None:
            return 0.0
        destination = location_of(worker)
        total = 0.0
        for access in self._graph.accesses.get(task, ()):
            if not access.mode.reads:
                continue
            if self._directory.has_copy(access.handle, destination):
                continue
            size = self._graph.handle_bytes.get(access.handle, 0)
            _, cost = self._directory.cheapest_source(
                access.handle, destination, size, self._model
            )
            total += cost
        return total

    def tasks_ready(self, tasks, time: float) -> None:
        for task in tasks:  # already sorted by decreasing priority
            best_worker = None
            best_finish = float("inf")
            for worker, avail in self._avail.items():
                finish = (
                    max(avail, time)
                    + self._transfer_estimate(task, worker)
                    + task.time_on(worker.kind)
                )
                if finish < best_finish - 1e-15:
                    best_finish = finish
                    best_worker = worker
            assert best_worker is not None
            self._queues[best_worker].append(task)
            self._avail[best_worker] = best_finish
