"""Transfer-time model between the memory spaces of a CPU+GPU node.

Memory topology (the StarPU view of the paper's machine):

* one **main RAM**, directly accessible by every CPU core;
* one private memory per GPU, connected to RAM over PCIe;
* GPU-to-GPU movements are staged through RAM (no peer-to-peer), i.e.
  they cost one device-to-host plus one host-to-device transfer.

A transfer of ``b`` bytes over one link costs ``latency + b / bandwidth``.
Defaults model PCIe 3.0 x16 with realistic effective bandwidth: one
960x960 double tile (~7.4 MB) moves in ~0.65 ms, i.e. the same order as
the GPU kernel durations of :mod:`repro.timing.kernels` — exactly the
regime where data-awareness starts to matter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from repro.core.platform import ResourceKind, Worker

__all__ = ["Location", "RAM", "gpu_memory", "location_of", "CommunicationModel"]

#: Main memory (shared by all CPU cores).
RAM = "RAM"

#: A location is main RAM or one GPU's private memory (by GPU index).
Location = Union[str, int]


def gpu_memory(index: int) -> Location:
    """The private memory of GPU *index*."""
    return int(index)


def location_of(worker: Worker) -> Location:
    """The memory space a worker computes from."""
    return RAM if worker.kind is ResourceKind.CPU else gpu_memory(worker.index)


@dataclass(frozen=True)
class CommunicationModel:
    """Latency + bandwidth transfer costs over the node's links.

    Parameters
    ----------
    bandwidth:
        Effective host<->device bandwidth in bytes per second.
    latency:
        Per-transfer setup latency in seconds.
    scale:
        Global multiplier on every transfer time; the sensitivity
        experiment sweeps this (0 = the paper's communication-free
        model).
    """

    bandwidth: float = 11.5e9  # ~PCIe 3.0 x16 effective
    latency: float = 12e-6
    scale: float = 1.0

    def __post_init__(self) -> None:
        if self.bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        if self.latency < 0 or self.scale < 0:
            raise ValueError("latency and scale must be non-negative")

    def link_time(self, size_bytes: int) -> float:
        """Cost of moving *size_bytes* over one host<->device link."""
        if size_bytes < 0:
            raise ValueError("size must be non-negative")
        return self.scale * (self.latency + size_bytes / self.bandwidth)

    def transfer_time(self, src: Location, dst: Location, size_bytes: int) -> float:
        """Cost of bringing a copy from *src* into *dst* (0 if same space).

        GPU-to-GPU is staged through RAM: two link traversals.
        """
        if src == dst or self.scale == 0.0:
            return 0.0
        hops = 2 if (src != RAM and dst != RAM) else 1
        return hops * self.link_time(size_bytes)

    def scaled(self, scale: float) -> "CommunicationModel":
        """A copy of this model with a different global *scale*."""
        return CommunicationModel(
            bandwidth=self.bandwidth, latency=self.latency, scale=scale
        )


#: Transfer-free model: reproduces the paper's original setting exactly.
ZERO_COMM = CommunicationModel(scale=0.0)
