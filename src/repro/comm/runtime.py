"""Communication-aware discrete-event DAG runtime.

Identical event structure to :class:`repro.simulator.runtime.RuntimeSimulator`
with one additional phase: when a task is dispatched to a worker, every
input handle without a valid copy in the worker's memory space is fetched
first (transfers serialise with the execution — no prefetching, the
conservative StarPU default).  Written handles invalidate remote copies
at completion.  All data movements are traced as
:class:`TransferEvent` records.

Placements in the resulting schedule cover the *compute* interval only
(the worker is additionally busy during the preceding transfers), and
the schedule is marked non-strict: an aborted interval may include
transfer time, and spoliation improvement is defined against
transfer-inclusive completion estimates.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Hashable

from repro.comm.memory import DataDirectory
from repro.comm.model import CommunicationModel, Location, location_of
from repro.core.platform import Platform, ResourceKind, Worker
from repro.core.schedule import Schedule, TIME_EPS
from repro.core.task import Task
from repro.dag.graph import TaskGraph
from repro.schedulers.online.base import OnlinePolicy, RunningView, Spoliate, StartTask

__all__ = ["TransferEvent", "CommRunResult", "CommAwareSimulator", "simulate_with_comm"]


@dataclass(frozen=True)
class TransferEvent:
    """One data movement performed on behalf of a task."""

    handle: Hashable
    source: Location
    destination: Location
    size_bytes: int
    start: float
    end: float
    task: Task
    worker: Worker


@dataclass
class CommRunResult:
    """Schedule plus the communication trace of one simulated run."""

    schedule: Schedule
    transfers: list[TransferEvent] = field(default_factory=list)

    @property
    def makespan(self) -> float:
        return self.schedule.makespan

    def transfer_volume(self) -> int:
        """Total bytes moved."""
        return sum(t.size_bytes for t in self.transfers)

    def transfer_time(self) -> float:
        """Total wall-clock time workers spent waiting on transfers."""
        return sum(t.end - t.start for t in self.transfers)


@dataclass
class _Execution:
    task: Task
    worker: Worker
    dispatch: float       # when the worker was committed (transfers start)
    compute_start: float  # when the kernel itself starts
    end: float
    generation: int


class CommAwareSimulator:
    """Execute a task graph with data-locality-induced transfer delays."""

    def __init__(
        self,
        graph: TaskGraph,
        platform: Platform,
        policy: OnlinePolicy,
        *,
        model: CommunicationModel | None = None,
    ):
        self.graph = graph
        self.platform = platform
        self.policy = policy
        self.model = model if model is not None else CommunicationModel()

    def run(self) -> CommRunResult:
        graph, platform, policy, model = self.graph, self.platform, self.policy, self.model
        schedule = Schedule(platform, strict=False)
        transfers: list[TransferEvent] = []
        directory = DataDirectory()
        if len(graph) == 0:
            return CommRunResult(schedule=schedule)

        policy.prepare(platform)
        attach = getattr(policy, "attach_comm", None)
        if attach is not None:
            attach(directory, model, graph)

        indegree = {task: graph.in_degree(task) for task in graph}
        remaining = len(graph)
        running: dict[Worker, _Execution] = {}
        idle: set[Worker] = set(platform.workers())
        generations: dict[Worker, int] = {w: 0 for w in platform.workers()}
        events: list[tuple[float, int, Worker, int]] = []
        seq = itertools.count()

        def service_key(worker: Worker) -> tuple[int, int]:
            return (0 if worker.kind is ResourceKind.GPU else 1, worker.index)

        def announce(tasks: list[Task], now: float) -> None:
            tasks.sort(key=lambda t: (-t.priority, t.uid))
            policy.tasks_ready(tasks, now)

        def running_view() -> dict[Worker, RunningView]:
            return {
                w: RunningView(task=e.task, worker=w, start=e.dispatch, end=e.end)
                for w, e in running.items()
            }

        def start(task: Task, worker: Worker, now: float) -> None:
            destination = location_of(worker)
            clock = now
            for access in graph.accesses.get(task, ()):
                if not access.mode.reads:
                    continue
                if directory.has_copy(access.handle, destination):
                    continue
                size = graph.handle_bytes.get(access.handle, 0)
                src, cost = directory.cheapest_source(
                    access.handle, destination, size, model
                )
                if cost > 0.0:
                    transfers.append(
                        TransferEvent(
                            handle=access.handle,
                            source=src,
                            destination=destination,
                            size_bytes=size,
                            start=clock,
                            end=clock + cost,
                            task=task,
                            worker=worker,
                        )
                    )
                    clock += cost
                directory.add_copy(access.handle, destination)
            compute_start = clock
            end = compute_start + task.time_on(worker.kind)
            generations[worker] += 1
            running[worker] = _Execution(
                task=task,
                worker=worker,
                dispatch=now,
                compute_start=compute_start,
                end=end,
                generation=generations[worker],
            )
            idle.discard(worker)
            heapq.heappush(events, (end, next(seq), worker, generations[worker]))
            policy.task_started(task, worker, now)

        def finish(execution: _Execution) -> list[Task]:
            schedule.add(
                execution.task,
                execution.worker,
                execution.compute_start,
                end=execution.end,
            )
            destination = location_of(execution.worker)
            for access in graph.accesses.get(execution.task, ()):
                if access.mode.writes:
                    directory.write(access.handle, destination)
            policy.task_finished(execution.task, execution.worker, execution.end)
            newly_ready = []
            for succ in graph.successors(execution.task):
                indegree[succ] -= 1
                if indegree[succ] == 0:
                    newly_ready.append(succ)
            return newly_ready

        def settle(now: float) -> None:
            progress = True
            while progress:
                progress = False
                for worker in sorted(idle, key=service_key):
                    if worker not in idle:
                        continue
                    action = policy.pick(worker, now, running_view())
                    if action is None:
                        continue
                    if isinstance(action, StartTask):
                        start(action.task, worker, now)
                        progress = True
                    elif isinstance(action, Spoliate):
                        victim = running.get(action.victim)
                        if victim is None or victim.worker.kind is worker.kind:
                            raise RuntimeError(
                                f"policy {policy.name} issued an invalid spoliation"
                            )
                        schedule.add(
                            victim.task,
                            victim.worker,
                            victim.dispatch,
                            end=now,
                            aborted=True,
                        )
                        del running[victim.worker]
                        generations[victim.worker] += 1
                        idle.add(victim.worker)
                        policy.task_aborted(victim.task, victim.worker, now)
                        start(victim.task, worker, now)
                        progress = True
                    else:  # pragma: no cover - exhaustive Action union
                        raise TypeError(f"unknown action {action!r}")

        announce(graph.sources(), 0.0)
        settle(0.0)
        while remaining > 0:
            if not events:
                raise RuntimeError(
                    f"policy {policy.name} stalled with {remaining} tasks unfinished"
                )
            time, _, worker, gen = heapq.heappop(events)
            finished: list[_Execution] = []
            if generations[worker] == gen:
                finished.append(running.pop(worker))
            while events and events[0][0] <= time + TIME_EPS:
                _, _, worker2, gen2 = heapq.heappop(events)
                if generations[worker2] == gen2:
                    finished.append(running.pop(worker2))
            if not finished:
                continue
            newly_ready: list[Task] = []
            for execution in finished:
                remaining -= 1
                idle.add(execution.worker)
                newly_ready.extend(finish(execution))
            if newly_ready:
                announce(newly_ready, time)
            if remaining > 0:
                settle(time)
        return CommRunResult(schedule=schedule, transfers=transfers)


def simulate_with_comm(
    graph: TaskGraph,
    platform: Platform,
    policy: OnlinePolicy,
    *,
    model: CommunicationModel | None = None,
) -> CommRunResult:
    """Convenience wrapper around :class:`CommAwareSimulator`."""
    return CommAwareSimulator(graph, platform, policy, model=model).run()
