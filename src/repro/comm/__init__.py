"""Communication substrate: data locality, transfer times, coherence.

The paper's introduction lists what a runtime scheduler knows at every
decision point, including *"(iv) the location of all input files of all
tasks"* and *"(v) an estimation of ... each communication between each
pair of resources"*.  The core experiments of the paper assume
communication-free durations (as do its proofs); this package is the
optional substrate that models the missing piece the way StarPU does:

* :mod:`repro.comm.model` — a bandwidth/latency transfer-time model
  (PCIe-class defaults) between the node's memory spaces;
* :mod:`repro.comm.memory` — an MSI-style data directory tracking where
  valid copies of every data handle live (main RAM shared by the CPUs,
  one private memory per GPU);
* :mod:`repro.comm.runtime` — a communication-aware discrete-event
  runtime: before a task executes, missing input copies are fetched
  (serialised with the execution — no prefetch), writes invalidate
  remote copies, and all transfers are traced;
* :mod:`repro.comm.heft` — the data-aware HEFT variant that adds
  estimated transfer times to its earliest-finish-time rule (the
  classic HEFT formulation, and StarPU's ``dmdas``).

This is an *extension* of the paper's evaluation (documented as such in
DESIGN.md): it lets users quantify how sensitive each scheduler's
ranking is to communication costs.
"""

from repro.comm.model import CommunicationModel, Location, RAM
from repro.comm.memory import DataDirectory
from repro.comm.runtime import CommAwareSimulator, TransferEvent, simulate_with_comm
from repro.comm.heft import CommAwareHeftPolicy

__all__ = [
    "CommunicationModel",
    "Location",
    "RAM",
    "DataDirectory",
    "CommAwareSimulator",
    "TransferEvent",
    "simulate_with_comm",
    "CommAwareHeftPolicy",
]
