"""Data directory: which memory spaces hold a valid copy of each handle.

A simplified MSI coherence protocol, as implemented by task-based
runtimes: reading a handle in a memory space creates a shared copy
there; writing invalidates every other copy.  All application data
starts in main RAM (matrices are allocated on the host before the
factorization is submitted).
"""

from __future__ import annotations

from typing import Hashable, Iterable

from repro.comm.model import RAM, CommunicationModel, Location

__all__ = ["DataDirectory"]


class DataDirectory:
    """Tracks the set of valid copies of every data handle."""

    def __init__(self) -> None:
        self._copies: dict[Hashable, set[Location]] = {}

    def copies(self, handle: Hashable) -> set[Location]:
        """Memory spaces holding a valid copy (RAM if never touched)."""
        return set(self._copies.get(handle, {RAM}))

    def has_copy(self, handle: Hashable, location: Location) -> bool:
        return location in self._copies.get(handle, {RAM})

    def cheapest_source(
        self,
        handle: Hashable,
        destination: Location,
        size_bytes: int,
        model: CommunicationModel,
    ) -> tuple[Location, float]:
        """The valid copy cheapest to fetch into *destination*.

        Returns ``(source, transfer_time)``; the time is 0 when a local
        copy already exists.
        """
        best_src: Location | None = None
        best_time = float("inf")
        for src in sorted(self.copies(handle), key=str):
            time = model.transfer_time(src, destination, size_bytes)
            if time < best_time:
                best_time = time
                best_src = src
        assert best_src is not None
        return best_src, best_time

    def add_copy(self, handle: Hashable, location: Location) -> None:
        """Record a new shared copy (after a read replication)."""
        self._copies.setdefault(handle, {RAM}).add(location)

    def write(self, handle: Hashable, location: Location) -> None:
        """Record a write: *location* becomes the only valid copy."""
        self._copies[handle] = {location}

    def invalidate_all(self, handles: Iterable[Hashable] | None = None) -> None:
        """Reset handles to their initial RAM-resident state."""
        if handles is None:
            self._copies.clear()
        else:
            for handle in handles:
                self._copies.pop(handle, None)
