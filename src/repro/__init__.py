"""heteroprio-repro: reproduction of the IPDPS 2017 HeteroPrio paper.

Beaumont, Eyraud-Dubois, Kumar — *Approximation Proofs of a Fast and
Efficient List Scheduling Algorithm for Task-Based Runtime Systems on
Multicores and GPUs*, IPDPS 2017.

Quickstart
----------
>>> import numpy as np
>>> from repro import Instance, Platform, heteroprio_schedule, area_bound
>>> rng = np.random.default_rng(0)
>>> instance = Instance.uniform_random(50, rng)
>>> platform = Platform(num_cpus=4, num_gpus=2)
>>> result = heteroprio_schedule(instance, platform)
>>> result.makespan >= area_bound(instance, platform).value
True

See ``README.md`` for the full tour and ``DESIGN.md`` for the map from
the paper's tables and figures to the code.
"""

from repro.core.heteroprio import HeteroPrioResult, SpoliationEvent, heteroprio_schedule
from repro.core.platform import Platform, ResourceKind, Worker
from repro.core.schedule import Placement, Schedule, ScheduleError
from repro.core.task import Instance, Task
from repro.bounds.area import AreaBoundResult, area_bound
from repro.bounds.simple import makespan_lower_bound
from repro.bounds.dag_lp import dag_lower_bound
from repro.dag.graph import TaskGraph
from repro.theory.constants import PHI, approximation_ratio

__version__ = "1.0.0"

__all__ = [
    "Task",
    "Instance",
    "Platform",
    "ResourceKind",
    "Worker",
    "Placement",
    "Schedule",
    "ScheduleError",
    "HeteroPrioResult",
    "SpoliationEvent",
    "heteroprio_schedule",
    "AreaBoundResult",
    "area_bound",
    "makespan_lower_bound",
    "dag_lower_bound",
    "TaskGraph",
    "PHI",
    "approximation_ratio",
    "__version__",
]
